"""The section-codec registry.

Every named section of the checkpoint file is one :class:`SectionCodec`
registered here: the codec owns the section's byte layout (encode and
decode against :class:`~repro.checkpoint.format.SectionWriter` /
:class:`~repro.checkpoint.format.SectionReader`), its capability flags,
a :meth:`~SectionCodec.describe` record the docs and ``repro schema
dump`` render from, and :meth:`~SectionCodec.mutation_targets` hints for
the fault injectors.  A format version is a
:class:`~repro.checkpoint.schema.profiles.FormatProfile` composed from
these codecs — adding a section means registering one codec, not
touching seven modules.

Decoding runs against a :class:`SnapshotBuilder`: each codec fills the
fields it owns, and :meth:`SnapshotBuilder.build` assembles the final
:class:`~repro.checkpoint.format.VMSnapshot` once every section of the
profile has run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.checkpoint.format import SectionReader, SectionWriter, VMSnapshot
    from repro.checkpoint.schema.profiles import FormatProfile


class SectionCodec:
    """One checkpoint section: identity, capabilities, encode/decode."""

    #: Section name — the ``begin_section`` mark, the v3 section-table
    #: row name, and the ``section`` attribute on typed errors.
    name: str = ""
    #: Stable numeric id (for tooling; never serialized in the body).
    sid: int = 0
    #: Covered by a per-section CRC32 row when the profile carries the
    #: integrity trailer (every body section is; the flag exists so
    #: fuzzing targets and docs read it off the codec, not a list).
    crc_protected: bool = True
    #: The payload changes representation under a delta profile (dirty
    #: regions instead of full dumps).
    delta_capable: bool = False
    #: Led by a one-byte presence marker under a delta profile (the
    #: section may be omitted and reconstruction walks the chain back).
    presence_gated: bool = False

    # -- wire format --------------------------------------------------------

    def encode(self, w: "SectionWriter", snap: "VMSnapshot",
               profile: "FormatProfile") -> None:
        raise NotImplementedError

    def decode(self, r: "SectionReader", b: "SnapshotBuilder",
               profile: "FormatProfile") -> None:
        raise NotImplementedError

    # -- capabilities -------------------------------------------------------

    def presence_gated_in(self, profile: "FormatProfile") -> bool:
        """Whether this profile frames the section with a presence byte."""
        return self.presence_gated and profile.delta

    def flags(self, profile: "FormatProfile") -> list[str]:
        """The capability flags active for this section under ``profile``."""
        out = []
        if self.crc_protected and profile.integrity_trailer:
            out.append("crc_protected")
        if self.delta_capable and profile.delta:
            out.append("delta_capable")
        if self.presence_gated_in(profile):
            out.append("presence_gated")
        return out

    # -- introspection ------------------------------------------------------

    def layout(self, profile: "FormatProfile") -> list[tuple[str, str, str]]:
        """``(field, type, note)`` rows describing the wire layout."""
        return []

    def describe(self, profile: "FormatProfile") -> dict:
        """A JSON-able description (drives docs and ``repro schema dump``)."""
        return {
            "name": self.name,
            "id": self.sid,
            "flags": self.flags(profile),
            "layout": [
                {"field": f, "type": t, "note": n}
                for f, t, n in self.layout(profile)
            ],
        }

    def mutation_targets(self, profile: "FormatProfile") -> list[dict]:
        """Fuzzing hints: how the fault injectors may damage this section.

        ``swap_eligible`` marks sections whose contents may be exchanged
        with another section's (both must be CRC-protected for the swap
        to be *detectable* rather than silently restorable).
        """
        return [
            {
                "section": self.name,
                "crc_protected": self.crc_protected
                and profile.integrity_trailer,
                "swap_eligible": self.crc_protected
                and profile.integrity_trailer,
                "presence_gated": self.presence_gated_in(profile),
            }
        ]


#: name -> codec singleton, in registration order (which IS body order).
_REGISTRY: dict[str, SectionCodec] = {}


def register(codec_cls: type) -> type:
    """Class decorator: instantiate and register a section codec."""
    codec = codec_cls()
    if not codec.name:
        raise ValueError(f"{codec_cls.__name__} has no section name")
    if codec.name in _REGISTRY:
        raise ValueError(f"duplicate section codec {codec.name!r}")
    if any(c.sid == codec.sid for c in _REGISTRY.values()):
        raise ValueError(f"duplicate section id {codec.sid}")
    _REGISTRY[codec.name] = codec
    return codec_cls


def get(name: str) -> SectionCodec:
    """The registered codec for section ``name``."""
    return _REGISTRY[name]


def all_codecs() -> dict[str, SectionCodec]:
    """Every registered codec, keyed by name, in registration order."""
    return dict(_REGISTRY)


class SnapshotBuilder:
    """Mutable decode context threaded through the section codecs."""

    def __init__(self, raw_arrays: bool = False) -> None:
        self.raw_arrays = raw_arrays
        # header
        self.word_bytes = 0
        self.endianness = None
        self.platform_name = ""
        self.os_name = ""
        self.multithreaded = False
        self.current_tid = 0
        self.code_digest = b""
        self.code_len = 0
        # v4 header extension
        self.parent_sha = b""
        self.chain_depth = 0
        self.dirty_words = 0
        self.total_words = 0
        # boundaries / globals
        self.boundaries: list = []
        self.freelist_head = 0
        self.global_data = 0
        self.allocated_words = 0
        # heap (full or delta) — n_chunks is shared with the index codec
        self.n_chunks = 0
        self.heap_chunks: list = []
        self.delta_chunks: list = []
        self.chunk_index: Optional[list] = None
        # atoms / C globals (presence-gated under delta profiles)
        self.has_atoms = True
        self.atom_words: list = []
        self.has_cglobals = True
        self.cglobal_words: list = []
        self.cglobal_roots: list = []
        # threads / channels
        self.threads: list = []
        self.channels: list = []

    def build(self, profile: "FormatProfile") -> "VMSnapshot":
        """Assemble the snapshot once every section has decoded."""
        from repro.checkpoint.format import (
            CheckpointHeader,
            DeltaInfo,
            VMSnapshot,
        )

        header = CheckpointHeader(
            word_bytes=self.word_bytes,
            endianness=self.endianness,
            platform_name=self.platform_name,
            os_name=self.os_name,
            multithreaded=self.multithreaded,
            current_tid=self.current_tid,
            code_digest=self.code_digest,
            code_len=self.code_len,
            format_version=profile.version,
        )
        delta = None
        if profile.delta:
            delta = DeltaInfo(
                parent_sha256=self.parent_sha,
                chain_depth=self.chain_depth,
                dirty_words=self.dirty_words,
                total_words=self.total_words,
                has_atoms=self.has_atoms,
                has_cglobals=self.has_cglobals,
                chunks=self.delta_chunks,
            )
        return VMSnapshot(
            header=header,
            boundaries=self.boundaries,
            freelist_head=self.freelist_head,
            global_data=self.global_data,
            allocated_words=self.allocated_words,
            heap_chunks=self.heap_chunks,
            atom_words=self.atom_words,
            cglobal_words=self.cglobal_words,
            cglobal_roots=self.cglobal_roots,
            threads=self.threads,
            channels=self.channels,
            chunk_index=self.chunk_index,
            delta=delta,
        )
