"""Format profiles: one declarative composition per on-disk version.

A :class:`FormatProfile` names the sections a version carries (in body
order) and the capabilities that distinguish versions — whether the
body may carry the v2 block-extent index, whether the v3 integrity
trailer follows the body, whether the heap is a v4 delta, and whether
the version can anchor a delta chain.  The writer, reader, fsck,
inspect, fuzzing, and store metadata all consume these flags; nothing
outside this package compares version numbers (a lint enforces it).

Adding a format v5 is one more profile here plus any new section
codecs — no other module changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.checkpoint.schema import registry
from repro.errors import CheckpointFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.checkpoint.format import SectionReader, SectionWriter, VMSnapshot

#: Body order when every section is present; profiles subset this.
_FULL_ORDER = (
    "header",
    "boundaries",
    "globals",
    "heap",
    "index",
    "atoms",
    "cglobals",
    "threads",
    "channels",
)


@dataclass(frozen=True)
class FormatProfile:
    """One checkpoint format version, composed from the codec registry."""

    version: int
    magic: bytes
    #: Section names in body order (subset of the registry).
    section_names: tuple
    #: May carry the optional v2 block-extent index section.
    block_index: bool = False
    #: Body is followed by the per-section CRC table + SHA-256 trailer.
    integrity_trailer: bool = False
    #: The heap section holds dirty regions bound to a parent generation
    #: (delta checkpoint) instead of full chunk dumps.
    delta: bool = False
    #: Files of this version can anchor a delta chain: they record the
    #: body SHA-256 a child delta's parent binding verifies against.
    delta_base_capable: bool = False

    # -- registry composition -----------------------------------------------

    @property
    def codecs(self) -> tuple:
        """The section codecs of this profile, in body order."""
        return tuple(registry.get(n) for n in self.section_names)

    @property
    def magic_repr(self) -> str:
        """Printable form of the magic, e.g. ``HCKP\\x03\\x00``."""
        return "".join(
            chr(c) if 0x20 <= c < 0x7F else f"\\x{c:02x}" for c in self.magic
        )

    # -- lookup ---------------------------------------------------------------

    @classmethod
    def all(cls) -> tuple:
        """Every known profile, oldest first."""
        return _PROFILES

    @classmethod
    def for_version(cls, version: int) -> "FormatProfile":
        for p in _PROFILES:
            if p.version == version:
                return p
        raise CheckpointFormatError(
            f"cannot write format version {version}"
        )

    @classmethod
    def for_magic(
        cls, magic: bytes, default: object = CheckpointFormatError
    ) -> Optional["FormatProfile"]:
        """The profile a magic identifies.

        With the default sentinel a bad magic raises the same typed
        error the parser always reported; pass ``default=None`` (or any
        value) for best-effort detection.
        """
        for p in _PROFILES:
            if p.magic == magic:
                return p
        if default is CheckpointFormatError:
            raise CheckpointFormatError(
                "not a checkpoint file (bad magic)", section="header", offset=0
            )
        return default  # type: ignore[return-value]

    @classmethod
    def for_snapshot(cls, snap: "VMSnapshot") -> "FormatProfile":
        """The profile a snapshot serializes under, with delta checks."""
        profile = cls.for_version(snap.header.format_version)
        if profile.delta and snap.delta is None:
            raise CheckpointFormatError(
                f"format v{profile.version} is delta-only: snapshot "
                f"carries no delta info"
            )
        if not profile.delta and snap.delta is not None:
            raise CheckpointFormatError(
                f"delta snapshots require format "
                f"v{cls.delta_profile().version} (asked for "
                f"v{profile.version})"
            )
        return profile

    @classmethod
    def delta_profile(cls) -> "FormatProfile":
        """The profile delta checkpoints are written under."""
        for p in _PROFILES:
            if p.delta:
                return p
        raise CheckpointFormatError("no delta-capable format profile")

    @classmethod
    def newest_full(cls) -> "FormatProfile":
        """The newest non-delta profile (merged chains present as it)."""
        return max(
            (p for p in _PROFILES if not p.delta), key=lambda p: p.version
        )

    @classmethod
    def magic_len(cls) -> int:
        return len(_PROFILES[0].magic)

    # -- body encode/decode ---------------------------------------------------

    def write_body(self, snap: "VMSnapshot") -> "SectionWriter":
        """Encode every section of this profile; returns the writer."""
        from repro.checkpoint.format import SectionWriter

        w = SectionWriter(snap.arch)
        for codec in self.codecs:
            w.begin_section(codec.name)
            codec.encode(w, snap, self)
        return w

    def parse_body(
        self, r: "SectionReader", raw_arrays: bool = False
    ) -> "VMSnapshot":
        """Decode every section of this profile from ``r``."""
        b = registry.SnapshotBuilder(raw_arrays)
        for codec in self.codecs:
            r.begin(codec.name)
            codec.decode(r, b, self)
        return b.build(self)

    # -- introspection --------------------------------------------------------

    def describe(self) -> dict:
        """A JSON-able description (docs, ``repro schema dump``)."""
        return {
            "version": self.version,
            "magic": self.magic_repr,
            "block_index": self.block_index,
            "integrity_trailer": self.integrity_trailer,
            "delta": self.delta,
            "delta_base_capable": self.delta_base_capable,
            "sections": [c.describe(self) for c in self.codecs],
        }

    def mutation_targets(self) -> list:
        """Fuzzing hints for every section of this profile."""
        out = []
        for codec in self.codecs:
            out.extend(codec.mutation_targets(self))
        return out


def _sections(block_index: bool) -> tuple:
    return tuple(
        n for n in _FULL_ORDER if n != "index" or block_index
    )


_PROFILES = (
    FormatProfile(
        version=1,
        magic=b"HCKP\x01\x00",
        section_names=_sections(block_index=False),
    ),
    FormatProfile(
        version=2,
        magic=b"HCKP\x02\x00",
        section_names=_sections(block_index=True),
        block_index=True,
    ),
    FormatProfile(
        version=3,
        magic=b"HCKP\x03\x00",
        section_names=_sections(block_index=True),
        block_index=True,
        integrity_trailer=True,
        delta_base_capable=True,
    ),
    FormatProfile(
        version=4,
        magic=b"HCKP\x04\x00",
        section_names=_sections(block_index=True),
        block_index=True,
        integrity_trailer=True,
        delta=True,
        delta_base_capable=True,
    ),
)
