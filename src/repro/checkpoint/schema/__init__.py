"""Declarative checkpoint schema: section codecs + format profiles.

The one description of the checkpoint file format.  Each body section
is a registered :class:`~repro.checkpoint.schema.registry.SectionCodec`
(name, id, wire layout, capability flags, inspection and fuzzing
hooks); each on-disk version v1-v4 is a
:class:`~repro.checkpoint.schema.profiles.FormatProfile` composed from
the registry.  The writer, reader, fsck, inspect, fault injectors,
store metadata, CLI, and the ``docs/FILE_FORMAT.md`` tables all derive
from this package — version-number branching anywhere else fails
``scripts/check_no_version_ladders.py``.
"""

from repro.checkpoint.schema.registry import (
    SectionCodec,
    SnapshotBuilder,
    all_codecs,
    get,
    register,
)
from repro.checkpoint.schema import sections as _sections  # registers codecs
from repro.checkpoint.schema.profiles import FormatProfile
from repro.checkpoint.schema.source import (
    ChunkSlice,
    SectionHandle,
    SnapshotSource,
)

del _sections

__all__ = [
    "ChunkSlice",
    "FormatProfile",
    "SectionCodec",
    "SectionHandle",
    "SnapshotBuilder",
    "SnapshotSource",
    "all_codecs",
    "get",
    "register",
]
