"""Streaming snapshot access: lazily-verified section handles.

A :class:`SnapshotSource` opens a checkpoint and resolves the *cheap*
identity eagerly — magic, format profile, end signature, and (for
trailer-carrying profiles) the v3 section table — then exposes each
body section behind a :class:`SectionHandle` that performs the read,
the per-section CRC32 verification, and the codec parse on first
access.  Eager mode (`resolve_all`) resolves every handle immediately
in body order, replicating the classic whole-file verification exactly,
so readers that want the old behavior get it through the same code
path the lazy consumers use.

Deferred verification bookkeeping: the whole-body SHA-256 and the
end-of-file CRC run over the body *in order*, so the source keeps an
incremental accumulator with a byte frontier.  Sections verified
in order feed it directly; sections verified out of order (everything
after a deferred heap) park their bytes until the frontier passes.
:meth:`SnapshotSource.finish_verification` reads whatever is still
unverified, completes both digests, and raises the same typed
:class:`~repro.errors.CheckpointIntegrityError` the eager path raises —
arbitrarily late, which is the contract the lazy-restore drain and the
checkpoint writer's ``lazy_finish`` barrier rely on.

Heap payloads — ~99.8% of a big checkpoint — additionally defer their
*parse*: :class:`ChunkSlice` records a chunk's geometry and byte offset
and materializes (or gathers sparse words from) the payload only when
touched.

Profiles without an integrity trailer (v1/v2) have no section table to
hand out, so the source degrades to the classic eager
read-verify-parse; the API is uniform either way.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from typing import Optional

import numpy as np

from repro.checkpoint.schema import registry
from repro.checkpoint.schema.profiles import FormatProfile
from repro.errors import CheckpointFormatError, CheckpointIntegrityError

#: Gather runs separated by at most this many words are coalesced into
#: one read — block headers a few words apart cost one syscall, not N.
_GATHER_SLACK = 64

_format_mod = None


def _fmt():
    """The format module, imported lazily to break the import cycle
    (``format.py`` imports this package at module level)."""
    global _format_mod
    if _format_mod is None:
        from repro.checkpoint import format as format_mod

        _format_mod = format_mod
    return _format_mod


class ChunkSlice:
    """One heap chunk's payload, unread until touched.

    Array-like enough for the restore pipeline: ``len``/``size`` answer
    geometry without IO, ``numpy.asarray`` (via ``__array__``) and
    :meth:`materialize` read and decode the full payload to canonical
    ``uint64``, and :meth:`gather` reads only the words a sparse index
    needs (block headers, string last-words) with run coalescing.
    """

    __slots__ = ("base", "n_words", "_source", "_offset", "_arr")

    def __init__(self, source: "SnapshotSource", base: int, n_words: int,
                 offset: int) -> None:
        self._source = source
        self.base = base
        self.n_words = n_words
        self._offset = offset
        self._arr: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return self.n_words

    def __len__(self) -> int:
        return self.n_words

    def materialize(self) -> np.ndarray:
        """Read, decode, and cache the full payload (uint64)."""
        if self._arr is None:
            src = self._source
            wb = src.arch.word_bytes
            raw = src._read(self._offset, self.n_words * wb)
            if len(raw) != self.n_words * wb:
                raise CheckpointIntegrityError(
                    f"heap chunk payload truncated: needed "
                    f"{self.n_words * wb} byte(s) at offset {self._offset} "
                    f"but only {len(raw)} could be read",
                    section="heap",
                    offset=self._offset,
                    length=self.n_words * wb,
                )
            self._arr = np.frombuffer(raw, dtype=src._dtype).astype(np.uint64)
            src._note_slice_materialized()
        return self._arr

    def gather(self, idx) -> np.ndarray:
        """The payload words at ``idx`` (any order, repeats allowed),
        reading only the coalesced byte runs that cover them."""
        if self._arr is not None:
            return self._arr[np.asarray(idx, dtype=np.int64)]
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0, dtype=np.uint64)
        src = self._source
        wb = src.arch.word_bytes
        uniq = np.unique(idx)
        bounds = np.flatnonzero(np.diff(uniq) > _GATHER_SLACK) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [uniq.size]))
        out = np.empty(uniq.size, dtype=np.uint64)
        for a, b in zip(starts, ends):
            lo = int(uniq[a])
            hi = int(uniq[b - 1]) + 1
            raw = src._read(self._offset + lo * wb, (hi - lo) * wb)
            span = np.frombuffer(raw, dtype=src._dtype).astype(np.uint64)
            out[a:b] = span[uniq[a:b] - lo]
        return out[np.searchsorted(uniq, idx)]

    def tolist(self) -> list:
        return self.materialize().tolist()

    def copy(self) -> np.ndarray:
        return self.materialize().copy()

    def __getitem__(self, key):
        return self.materialize()[key]

    def __array__(self, dtype=None, copy=None):
        arr = self.materialize()
        if dtype is not None and arr.dtype != np.dtype(dtype):
            return arr.astype(dtype)
        return arr


class SectionHandle:
    """One body section: named byte extent + lazy read/verify/parse."""

    __slots__ = ("source", "name", "offset", "length", "crc32",
                 "verified", "resolved")

    def __init__(self, source: "SnapshotSource", name: str, offset: int,
                 length: int, crc32: int) -> None:
        self.source = source
        self.name = name
        self.offset = offset
        self.length = length
        self.crc32 = crc32
        #: CRC-checked (and fed to the body digest accumulators).
        self.verified = False
        #: Parsed into the snapshot (heap: payloads materialized too).
        self.resolved = False

    @property
    def end(self) -> int:
        return self.offset + self.length

    def read(self) -> bytes:
        """The section's bytes, CRC-verified on first call."""
        data = self.source._read(self.offset, self.length)
        if not self.verified:
            actual = zlib.crc32(data) & 0xFFFFFFFF
            if actual != self.crc32:
                raise CheckpointIntegrityError(
                    f"section '{self.name}' CRC mismatch at bytes "
                    f"{self.offset}..{self.end} (expected "
                    f"{self.crc32:#010x}, got {actual:#010x})",
                    section=self.name,
                    offset=self.offset,
                    length=self.length,
                    expected=self.crc32,
                    actual=actual,
                )
            self.verified = True
            self.source._feed(self.offset, data)
        return data

    def crc_actual(self) -> int:
        """The CRC32 of the section bytes as stored (no verify, no
        state change) — fsck's damage probe."""
        data = self.source._read(self.offset, self.length)
        return zlib.crc32(data) & 0xFFFFFFFF


class SnapshotSource:
    """A checkpoint opened for section-at-a-time access.

    ``open(path)`` (eager) reads the whole file into memory;
    ``open(path, defer=True)`` keeps a file descriptor and reads
    sections on demand via ``os.pread`` (safe across the atomic-commit
    rename: the fd pins the inode).  ``from_bytes`` wraps an in-memory
    image (fsck).  ``tolerant=True`` stashes open-time structural
    errors instead of raising, for damage-probing callers.
    """

    def __init__(self, path: Optional[str], data: Optional[bytes],
                 fd: Optional[int], size: int, raw_arrays: bool,
                 defer: bool, tolerant: bool) -> None:
        self.path = path
        self._data = data
        self._fd = fd
        self.size = size
        self.raw_arrays = raw_arrays
        self._defer = defer
        self.profile: Optional[FormatProfile] = None
        self.handles: Optional[list[SectionHandle]] = None
        self.snapshot = None
        self.arch = None
        self._dtype = None
        self.body_len = 0
        self.recorded_sha: Optional[bytes] = None
        self.end_crc = 0
        self._trailer_bytes = b""
        # Incremental body digests: frontier = next body byte to hash.
        self._sha = hashlib.sha256()
        self._crc = 0
        self._frontier = 0
        self._pending_feed: dict[int, bytes] = {}
        self.fully_verified = False
        self.bytes_read = size if data is not None else 0
        self._builder: Optional[registry.SnapshotBuilder] = None
        self._next_parse = 0
        self._aligned = True
        self._slices_pending = 0
        self._open_error: Optional[CheckpointFormatError] = None
        try:
            self._open()
        except CheckpointFormatError as e:
            if not tolerant:
                self.close()
                raise
            self._open_error = e
        except BaseException:
            self.close()
            raise

    # -- constructors --------------------------------------------------------

    @classmethod
    def open(cls, path: str, raw_arrays: bool = False, defer: bool = False,
             tolerant: bool = False) -> "SnapshotSource":
        if defer:
            fd = os.open(path, os.O_RDONLY)
            size = os.fstat(fd).st_size
            return cls(path, None, fd, size, raw_arrays, True, tolerant)
        with open(path, "rb") as f:
            data = f.read()
        return cls(path, data, None, len(data), raw_arrays, False, tolerant)

    @classmethod
    def from_bytes(cls, data: bytes, raw_arrays: bool = False,
                   tolerant: bool = False) -> "SnapshotSource":
        return cls(None, bytes(data), None, len(data), raw_arrays, False,
                   tolerant)

    # -- raw IO --------------------------------------------------------------

    def _read(self, off: int, n: int) -> bytes:
        if self._data is not None:
            return self._data[off : off + n]
        self.bytes_read += n
        return os.pread(self._fd, n, off)

    def _whole(self) -> bytes:
        if self._data is None:
            self._data = os.pread(self._fd, self.size, 0)
        return self._data

    def close(self) -> None:
        fd, self._fd = self._fd, None
        if fd is not None:
            os.close(fd)

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- open-time resolution ------------------------------------------------

    def _open(self) -> None:
        fmt = _fmt()
        if self.size < len(fmt.CHECKPOINT_MAGIC) + len(fmt.CHECKPOINT_END) + 4:
            raise CheckpointFormatError(
                f"checkpoint file too small ({self.size} byte(s)): "
                f"truncated in section 'header'",
                section="header",
                offset=self.size,
            )
        end = self._read(self.size - 12, 12)
        if end[:8] != fmt.CHECKPOINT_END:
            fmt._raise_truncation(self._whole())
        (self.end_crc,) = struct.unpack("<I", end[8:])
        magic = self._read(0, FormatProfile.magic_len())
        self.profile = FormatProfile.for_magic(magic, None)
        if self.profile is None or not self.profile.integrity_trailer:
            # No section table (v1/v2, or unknown magic): the classic
            # whole-file read + CRC + parse is the only access path.
            self.snapshot = fmt._parse_checkpoint(self._whole(),
                                                  self.raw_arrays)
            self.fully_verified = True
            self._release_backing()
            return
        self._open_trailer(fmt)
        expected = tuple(c.name for c in self.profile.codecs)
        if tuple(h.name for h in self.handles) != expected:
            # A table whose rows do not match the profile's body order
            # cannot drive per-section parsing; fall back to the
            # sequential whole-body path (still fully verified).
            self._aligned = False
        if self._defer:
            if not self._aligned:
                self.snapshot = fmt._parse_checkpoint(self._whole(),
                                                      self.raw_arrays)
                self.fully_verified = True
                self._release_backing()
                return
            self._resolve_sections(defer_heap=not self.profile.delta)
            self._build()

    def _open_trailer(self, fmt) -> None:
        """Locate and structurally validate the v3 integrity trailer.

        Checks (and error messages) mirror the eager verifier exactly;
        only the CRC/SHA *content* checks are deferred to the handles.
        """
        payload_len = self.size - 12
        min_trailer = len(fmt.TRAILER_MAGIC) + 4 + 32
        if payload_len < min_trailer + 4:
            raise CheckpointIntegrityError(
                "v3 integrity trailer missing (file too small)",
                section="trailer",
                offset=payload_len,
            )
        (tlen,) = struct.unpack("<I", self._read(payload_len - 4, 4))
        tstart = payload_len - 4 - tlen
        usable = tlen >= min_trailer and tstart >= len(fmt.CHECKPOINT_MAGIC)
        blob = self._read(tstart, payload_len - tstart) if usable else b""
        if not usable or blob[: len(fmt.TRAILER_MAGIC)] != fmt.TRAILER_MAGIC:
            raise CheckpointIntegrityError(
                "v3 integrity trailer is missing or corrupt",
                section="trailer",
                offset=max(tstart, 0),
                length=min(tlen + 4, payload_len),
            )
        self._trailer_bytes = blob
        self.body_len = tstart
        tr = fmt.SectionReader(blob[:-4])
        tr.begin("trailer")
        try:
            tr._take(len(fmt.TRAILER_MAGIC))
            n = tr.u32()
            if n > 256:
                raise CheckpointFormatError(
                    f"implausible section count {n}", section="trailer"
                )
            entries = []
            for _ in range(n):
                name = tr.str_lp()
                off, length, crc32v = struct.unpack("<QQI", tr._take(20))
                entries.append((name, off, length, crc32v))
            sha = tr._take(32)
        except CheckpointFormatError as e:
            raise CheckpointIntegrityError(
                f"v3 section table unreadable: {e}",
                section="trailer",
                offset=tstart,
                length=tlen + 4,
            ) from e
        pos = 0
        for name, off, length, _crc in entries:
            if off != pos or off + length > self.body_len:
                raise CheckpointIntegrityError(
                    f"v3 section table does not tile the body (section "
                    f"'{name}' claims bytes {off}..{off + length})",
                    section="trailer",
                    offset=tstart,
                    length=tlen + 4,
                )
            pos = off + length
        if pos != self.body_len:
            raise CheckpointIntegrityError(
                f"v3 section table covers {pos} of {self.body_len} body "
                f"byte(s)",
                section="trailer",
                offset=tstart,
                length=tlen + 4,
            )
        self.recorded_sha = sha
        self.handles = [
            SectionHandle(self, name, off, length, crc32v)
            for name, off, length, crc32v in entries
        ]

    def _release_backing(self) -> None:
        """Drop the fd once nothing can ask for more reads."""
        if (self._fd is not None and self.fully_verified
                and self._slices_pending == 0):
            self.close()

    # -- verification accumulator --------------------------------------------

    def _feed(self, offset: int, data: bytes) -> None:
        if offset != self._frontier:
            self._pending_feed[offset] = data
            return
        self._sha.update(data)
        self._crc = zlib.crc32(data, self._crc)
        self._frontier += len(data)
        while self._frontier in self._pending_feed:
            nxt = self._pending_feed.pop(self._frontier)
            self._sha.update(nxt)
            self._crc = zlib.crc32(nxt, self._crc)
            self._frontier += len(nxt)

    def _finalize_digests(self) -> None:
        actual_sha = self._sha.digest()
        if actual_sha != self.recorded_sha:
            raise CheckpointIntegrityError(
                f"whole-file SHA-256 mismatch (expected "
                f"{self.recorded_sha.hex()[:16]}..., got "
                f"{actual_sha.hex()[:16]}...)",
                section="file",
                offset=0,
                length=self.body_len,
                expected=self.recorded_sha.hex(),
                actual=actual_sha.hex(),
            )
        crc = zlib.crc32(self._trailer_bytes, self._crc) & 0xFFFFFFFF
        if crc != self.end_crc:
            raise CheckpointIntegrityError(
                "end-of-file CRC mismatch (trailer bytes corrupt)",
                section="trailer",
                offset=self.body_len,
                length=len(self._trailer_bytes),
                expected=self.end_crc,
                actual=crc,
            )
        self.fully_verified = True

    def finish_verification(self) -> None:
        """Read and verify every still-deferred section, then complete
        the whole-body SHA-256 and the end-of-file CRC.

        Idempotent.  Failures surface as the same typed
        :class:`~repro.errors.CheckpointIntegrityError` the eager
        verifier raises — however late this runs.
        """
        if self.fully_verified or self.handles is None:
            return
        for h in self.handles:
            if not h.verified:
                h.read()
        self._finalize_digests()

    # -- parsing -------------------------------------------------------------

    def _note_slice_materialized(self) -> None:
        if self._slices_pending > 0:
            self._slices_pending -= 1
            if self._slices_pending == 0:
                if self.handles is not None:
                    for h in self.handles:
                        if h.name == "heap":
                            h.resolved = True
                self._release_backing()

    def _resolve_sections(self, defer_heap: bool) -> None:
        fmt = _fmt()
        if self._builder is None:
            self._builder = registry.SnapshotBuilder(self.raw_arrays)
        b = self._builder
        codecs = self.profile.codecs
        while self._next_parse < len(codecs):
            i = self._next_parse
            codec = codecs[i]
            h = self.handles[i]
            if codec.name == "heap" and defer_heap:
                self._parse_heap_deferred(h, b)
                self._next_parse = i + 1
                continue
            data = h.read()
            r = fmt.SectionReader(data, arch=self.arch)
            r.base = h.offset
            r.begin(codec.name)
            try:
                codec.decode(r, b, self.profile)
            except CheckpointFormatError:
                raise
            except (ValueError, struct.error, UnicodeDecodeError,
                    IndexError, OverflowError) as e:
                raise CheckpointFormatError(
                    f"malformed checkpoint data in section '{r.section}' "
                    f"at byte offset {r.base + r.off}: {e}",
                    section=r.section,
                    offset=r.base + r.off,
                ) from e
            if codec.name == "header":
                self.arch = r.arch
                self._dtype = np.dtype(self.arch.numpy_dtype)
            h.resolved = True
            self._next_parse = i + 1

    def _parse_heap_deferred(self, h: SectionHandle,
                             b: registry.SnapshotBuilder) -> None:
        """Structural parse of a full heap section: chunk geometry only.

        Reads the chunk count and each chunk's ``(base, n_words)``
        framing — a handful of tiny reads — and records the payload
        byte extents as :class:`ChunkSlice` thunk fodder.  The payload
        bytes stay on disk, unread and unverified, until touched.
        """
        arch = self.arch
        wb = arch.word_bytes
        end = h.end

        def trunc(needed: int, at: int) -> CheckpointFormatError:
            return CheckpointFormatError(
                f"truncated checkpoint file: section 'heap' needs "
                f"{needed} byte(s) at offset {at} but only {end - at} "
                f"remain",
                section="heap",
                offset=at,
            )

        if h.length < 4:
            raise trunc(4, h.offset)
        (n_chunks,) = struct.unpack("<I", self._read(h.offset, 4))
        b.n_chunks = n_chunks
        cursor = h.offset + 4
        for _ in range(n_chunks):
            if cursor + wb + 8 > end:
                raise trunc(wb + 8, cursor)
            hdr = self._read(cursor, wb + 8)
            base = arch.word_from_bytes(hdr[:wb])
            (count,) = struct.unpack("<Q", hdr[wb:])
            payload_off = cursor + wb + 8
            if payload_off + count * wb > end:
                raise trunc(count * wb, payload_off)
            b.heap_chunks.append(
                (base, ChunkSlice(self, base, count, payload_off))
            )
            self._slices_pending += 1
            cursor = payload_off + count * wb
        if cursor != end:
            raise CheckpointFormatError(
                f"heap section extent mismatch: chunk payloads end at "
                f"byte {cursor} but the section table records {end}",
                section="heap",
                offset=cursor,
            )

    def _build(self) -> None:
        fmt = _fmt()
        snap = self._builder.build(self.profile)
        snap.sections = [
            fmt.SectionEntry(h.name, h.offset, h.length, h.crc32)
            for h in self.handles
        ]
        snap.body_sha256 = self.recorded_sha
        snap._source = self
        self.snapshot = snap

    def resolve_all(self):
        """Resolve every handle immediately: the eager mode.

        Replicates the classic verification order bit for bit — every
        per-section CRC in body order, then the whole-body SHA-256,
        then the end-of-file CRC, then the body parse — so eager
        consumers keep the exact error surface they always had.
        """
        if self._open_error is not None:
            raise self._open_error
        if self.snapshot is not None and self._slices_pending == 0 \
                and self.fully_verified:
            return self.snapshot
        fmt = _fmt()
        if not self._aligned:
            self.snapshot = fmt._parse_checkpoint(self._whole(),
                                                  self.raw_arrays)
            self.fully_verified = True
            self._release_backing()
            return self.snapshot
        self.finish_verification()
        self._resolve_sections(defer_heap=False)
        if self.snapshot is None:
            self._build()
        else:
            # A deferred open already built the snapshot with chunk
            # slices; materialize them so the result is fully eager.
            for _base, ws in self.snapshot.heap_chunks:
                if isinstance(ws, ChunkSlice):
                    ws.materialize()
        self._release_backing()
        return self.snapshot

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """The section-resolution report (``repro info --json`` lazy
        block, RESTART metrics)."""
        if self.handles is None:
            return {
                "sections": None,
                "resolved": None,
                "unresolved": 0,
                "unresolved_names": [],
                "bytes_total": self.size,
                "bytes_read": self.bytes_read,
                "bytes_verified": self.size if self.fully_verified else 0,
                "bytes_deferred": 0,
                "sha_verified": self.fully_verified,
            }
        unresolved = [h.name for h in self.handles if not h.resolved]
        return {
            "sections": len(self.handles),
            "resolved": len(self.handles) - len(unresolved),
            "unresolved": len(unresolved),
            "unresolved_names": unresolved,
            "bytes_total": self.size,
            "bytes_read": min(self.bytes_read, self.size),
            "bytes_verified": sum(
                h.length for h in self.handles if h.verified
            ),
            "bytes_deferred": sum(
                h.length for h in self.handles if not h.verified
            ),
            "sha_verified": self.fully_verified,
        }
