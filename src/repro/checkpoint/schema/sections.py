"""The section codecs: the checkpoint body, one registered unit each.

Registration order IS body order (header, boundaries, globals, heap,
index, atoms, cglobals, threads, channels); a
:class:`~repro.checkpoint.schema.profiles.FormatProfile` selects the
subset a version carries (v1 has no index section).  Codecs branch on
profile *capabilities* (``profile.delta``, ``profile.block_index``),
never on version numbers — the version-ladder lint enforces that
outside this package.

The byte layouts here are the seed implementation's, moved verbatim:
the golden fixtures under ``tests/fixtures/golden/`` pin every encoded
byte, so any drift fails the schema-compat tests.
"""

from __future__ import annotations

import numpy as np

from repro.arch.architecture import Architecture, Endianness
from repro.channels.manager import ChannelRecord
from repro.checkpoint.schema.registry import (
    SectionCodec,
    SnapshotBuilder,
    register,
)
from repro.errors import CheckpointFormatError


@register
class HeaderSection(SectionCodec):
    """Magic, architecture marker, identity, v4 parent binding."""

    name = "header"
    sid = 1

    def encode(self, w, snap, profile) -> None:
        w.raw(profile.magic)
        arch = snap.arch
        h = snap.header
        # Architecture marker (paper step 5): word size then native "one".
        w.u8(arch.word_bytes)
        w.word(1)
        w.str_lp(h.platform_name)
        w.str_lp(h.os_name)
        w.u8(1 if h.multithreaded else 0)
        w.u32(h.current_tid)
        w.bytes_lp(h.code_digest)
        w.u32(h.code_len)
        if profile.delta:
            # Parent binding: the delta only applies on top of the exact
            # generation whose body hashed to this digest.
            d = snap.delta
            w.raw(d.parent_sha256)
            w.u32(d.chain_depth)
            w.u64(d.dirty_words)
            w.u64(d.total_words)

    def decode(self, r, b, profile) -> None:
        r._take(len(profile.magic))  # matched by the profile lookup
        # Architecture marker (paper §4.2 step 2): detect word size and
        # endianness from the saved constant one.
        word_bytes = r.u8()
        if word_bytes not in (4, 8):
            raise CheckpointFormatError(f"impossible word size {word_bytes}")
        marker = r._take(word_bytes)
        if int.from_bytes(marker, "little") == 1:
            endianness = Endianness.LITTLE
        elif int.from_bytes(marker, "big") == 1:
            endianness = Endianness.BIG
        else:
            raise CheckpointFormatError("unreadable architecture marker")
        r.set_arch(Architecture(word_bytes * 8, endianness, "saved"))
        b.word_bytes = word_bytes
        b.endianness = endianness
        b.platform_name = r.str_lp()
        b.os_name = r.str_lp()
        b.multithreaded = bool(r.u8())
        b.current_tid = r.u32()
        b.code_digest = r.bytes_lp()
        b.code_len = r.u32()
        if profile.delta:
            b.parent_sha = r._take(32)
            b.chain_depth = r.u32()
            b.dirty_words = r.u64()
            b.total_words = r.u64()

    def layout(self, profile):
        rows = [
            ("magic", "raw[6]", f"`{profile.magic_repr}`"),
            ("word_bytes", "u8", "word size of the saving machine"),
            ("arch_marker", "word", "the value 1 in native representation"),
            ("platform", "lp-str", "platform name"),
            ("os", "lp-str", "OS personality name"),
            ("multithreaded", "u8", "application type"),
            ("current_tid", "u32", "thread running at the safe point"),
            ("code_digest", "lp-bytes", "program identity"),
            ("code_len", "u32", "code units"),
        ]
        if profile.delta:
            rows += [
                ("parent_sha256", "raw[32]", "parent body digest binding"),
                ("chain_depth", "u32", "1 = delta directly on a full"),
                ("dirty_words", "u64", "heap words carried in this delta"),
                ("total_words", "u64", "mapped heap words at capture"),
            ]
        return rows


@register
class BoundariesSection(SectionCodec):
    """Boundary addresses of every memory area (paper step 6)."""

    name = "boundaries"
    sid = 2

    def encode(self, w, snap, profile) -> None:
        w.u32(len(snap.boundaries))
        for area in snap.boundaries:
            w.str_lp(area.kind)
            w.str_lp(area.label)
            w.word(area.base)
            w.u64(area.n_words)

    def decode(self, r, b, profile) -> None:
        from repro.checkpoint.format import AreaRecord

        for _ in range(r.u32()):
            kind = r.str_lp()
            label = r.str_lp()
            base = r.word()
            n_words = r.u64()
            b.boundaries.append(AreaRecord(kind, label, base, n_words))

    def layout(self, profile):
        return [
            ("count", "u32", "number of areas"),
            ("kind, label", "lp-str x2", "per area"),
            ("base", "word", "byte address (native word)"),
            ("n_words", "u64", "area size"),
        ]


@register
class GlobalsSection(SectionCodec):
    """VM globals: freelist head, global_data, allocation counter."""

    name = "globals"
    sid = 3

    def encode(self, w, snap, profile) -> None:
        w.word(snap.freelist_head)
        w.word(snap.global_data)
        w.u64(snap.allocated_words)

    def decode(self, r, b, profile) -> None:
        b.freelist_head = r.word()
        b.global_data = r.word()
        b.allocated_words = r.u64()

    def layout(self, profile):
        return [
            ("freelist_head", "word", "major-heap freelist"),
            ("global_data", "word", "the program's global block"),
            ("allocated_words", "u64", "allocation counter"),
        ]


@register
class HeapSection(SectionCodec):
    """Major heap: full chunk dumps, or dirty regions under a delta."""

    name = "heap"
    sid = 4
    delta_capable = True

    def encode(self, w, snap, profile) -> None:
        if profile.delta:
            delta = snap.delta
            w.u32(len(delta.chunks))
            for rec in delta.chunks:
                w.word(rec.base)
                w.u64(rec.n_words)
                w.u32(len(rec.regions))
                for start, words in rec.regions:
                    w.u64(start)
                    w.words(words)
        else:
            w.u32(len(snap.heap_chunks))
            for base, words in snap.heap_chunks:
                w.word(base)
                w.words(words)

    def decode(self, r, b, profile) -> None:
        from repro.checkpoint.format import DeltaChunkRecord

        b.n_chunks = n_chunks = r.u32()
        if profile.delta:
            for _ in range(n_chunks):
                base = r.word()
                n_words = r.u64()
                regions = []
                for _ in range(r.u32()):
                    start = r.u64()
                    regions.append(
                        (start, r.words_array() if b.raw_arrays else r.words())
                    )
                b.delta_chunks.append(DeltaChunkRecord(base, n_words, regions))
        else:
            for _ in range(n_chunks):
                base = r.word()
                b.heap_chunks.append(
                    (base, r.words_array() if b.raw_arrays else r.words())
                )

    def layout(self, profile):
        rows = [("n_chunks", "u32", "mapped heap chunks")]
        if profile.delta:
            rows += [
                ("base", "word", "per chunk (every mapped chunk)"),
                ("n_words", "u64", "chunk geometry"),
                ("n_regions", "u32", "dirty runs in this chunk"),
                ("start, words", "u64 + word-array", "per dirty run"),
            ]
        else:
            rows += [
                ("base", "word", "per chunk"),
                ("words", "word-array", "u64 count + native words"),
            ]
        return rows


@register
class IndexSection(SectionCodec):
    """The optional v2 block-extent index (delta-coded positions)."""

    name = "index"
    sid = 5
    presence_gated = True  # one presence byte in every carrying profile

    def presence_gated_in(self, profile) -> bool:
        return profile.block_index

    def encode(self, w, snap, profile) -> None:
        n_chunks = (
            len(snap.delta.chunks) if profile.delta else len(snap.heap_chunks)
        )
        if snap.chunk_index is not None and len(snap.chunk_index) != n_chunks:
            raise CheckpointFormatError(
                "block-extent index does not cover every heap chunk"
            )
        w.u8(1 if snap.chunk_index is not None else 0)
        if snap.chunk_index is not None:
            _encode_chunk_index(w, snap.chunk_index)

    def decode(self, r, b, profile) -> None:
        if r.u8():
            b.chunk_index = _decode_chunk_index(r, b.n_chunks)

    def layout(self, profile):
        return [
            ("present", "u8", "0 = no index (scalar writer)"),
            ("count", "u32", "per chunk: block header count"),
            ("deltas", "lp-bytes", "u8 position deltas, 0xFF = escape"),
            ("escapes", "u32 + <u4[]", "positions whose delta >= 0xFF"),
            ("classes", "lp-bytes", "one CLASS_* byte per block"),
        ]


@register
class AtomsSection(SectionCodec):
    """Atom table dump (paper step 9); omitted from deltas when static."""

    name = "atoms"
    sid = 6
    presence_gated = True

    def encode(self, w, snap, profile) -> None:
        if profile.delta:
            w.u8(1 if snap.delta.has_atoms else 0)
            if not snap.delta.has_atoms:
                return
        w.words(snap.atom_words)

    def decode(self, r, b, profile) -> None:
        b.has_atoms = bool(r.u8()) if profile.delta else True
        b.atom_words = r.words() if b.has_atoms else []

    def layout(self, profile):
        rows = []
        if profile.delta:
            rows.append(("present", "u8", "0 = unchanged since the parent"))
        rows.append(("atoms", "word-array", "the atom table"))
        return rows


@register
class CGlobalsSection(SectionCodec):
    """C-global area dump + registered root indices."""

    name = "cglobals"
    sid = 7
    presence_gated = True

    def encode(self, w, snap, profile) -> None:
        if profile.delta:
            w.u8(1 if snap.delta.has_cglobals else 0)
            if not snap.delta.has_cglobals:
                return
        w.words(snap.cglobal_words)
        w.u32(len(snap.cglobal_roots))
        for idx in snap.cglobal_roots:
            w.u32(idx)

    def decode(self, r, b, profile) -> None:
        b.has_cglobals = bool(r.u8()) if profile.delta else True
        if b.has_cglobals:
            b.cglobal_words = r.words()
            b.cglobal_roots = [r.u32() for _ in range(r.u32())]
        else:
            b.cglobal_words, b.cglobal_roots = [], []

    def layout(self, profile):
        rows = []
        if profile.delta:
            rows.append(("present", "u8", "0 = untouched since the parent"))
        rows += [
            ("cglobals", "word-array", "the C-global area"),
            ("n_roots", "u32", "registered root count"),
            ("roots", "u32[]", "root word indices"),
        ]
        return rows


@register
class ThreadsSection(SectionCodec):
    """Per-thread registers, scheduling state, used stack region."""

    name = "threads"
    sid = 8

    def encode(self, w, snap, profile) -> None:
        w.u32(len(snap.threads))
        for t in snap.threads:
            w.u32(t.tid)
            w.str_lp(t.state)
            w.str_lp(t.block_kind)
            w.word(t.blocked_on)
            w.word(t.pending_mutex)
            w.word(t.result)
            w.word(t.regs.pc)
            w.word(t.regs.sp)
            w.word(t.regs.accu)
            w.word(t.regs.env)
            w.i64(t.regs.extra_args)
            w.word(t.regs.trapsp)
            w.word(t.stack_base)
            w.word(t.stack_high)
            w.u64(t.capacity_words)
            w.words(t.stack_words)

    def decode(self, r, b, profile) -> None:
        from repro.checkpoint.format import RegisterRecord, ThreadRecord

        for _ in range(r.u32()):
            tid = r.u32()
            state = r.str_lp()
            block_kind = r.str_lp()
            blocked_on = r.word()
            pending_mutex = r.word()
            result = r.word()
            regs = RegisterRecord(
                pc=r.word(), sp=r.word(), accu=r.word(), env=r.word(),
                extra_args=r.i64(), trapsp=r.word(),
            )
            stack_base = r.word()
            stack_high = r.word()
            capacity_words = r.u64()
            stack_words = r.words_array() if b.raw_arrays else r.words()
            b.threads.append(
                ThreadRecord(
                    tid, state, block_kind, blocked_on, pending_mutex,
                    result, regs, stack_base, stack_high, capacity_words,
                    stack_words,
                )
            )

    def layout(self, profile):
        return [
            ("count", "u32", "threads"),
            ("tid", "u32", "per thread"),
            ("state, block_kind", "lp-str x2", "scheduling state"),
            ("blocked_on, pending_mutex, result", "word x3", ""),
            ("pc, sp, accu, env", "word x4", "abstract registers"),
            ("extra_args", "i64", ""),
            ("trapsp", "word", "innermost trap frame, 0 = none"),
            ("stack_base, stack_high", "word x2", "stack geometry"),
            ("capacity_words", "u64", ""),
            ("stack", "word-array", "used region, top first"),
        ]


@register
class ChannelsSection(SectionCodec):
    """Channel records (paper step 12)."""

    name = "channels"
    sid = 9

    def encode(self, w, snap, profile) -> None:
        w.u32(len(snap.channels))
        for ch in snap.channels:
            w.u32(ch.cid)
            w.u8(1 if ch.path is not None else 0)
            if ch.path is not None:
                w.str_lp(ch.path)
            w.str_lp(ch.mode)
            w.u8(1 if ch.std_name is not None else 0)
            if ch.std_name is not None:
                w.str_lp(ch.std_name)
            w.u64(ch.position)
            w.bytes_lp(ch.out_buffer)
            w.u8(1 if ch.closed else 0)

    def decode(self, r, b, profile) -> None:
        for _ in range(r.u32()):
            cid = r.u32()
            path = r.str_lp() if r.u8() else None
            mode = r.str_lp()
            std_name = r.str_lp() if r.u8() else None
            position = r.u64()
            out_buffer = r.bytes_lp()
            closed = bool(r.u8())
            b.channels.append(
                ChannelRecord(
                    cid, path, mode, std_name, position, out_buffer, closed
                )
            )

    def layout(self, profile):
        return [
            ("count", "u32", "channels"),
            ("cid", "u32", "per channel"),
            ("has_path [+path]", "u8 [+lp-str]", "file-backed channels"),
            ("mode", "lp-str", ""),
            ("has_std [+std_name]", "u8 [+lp-str]", "stdin/stdout/stderr"),
            ("position", "u64", "file offset"),
            ("out_buffer", "lp-bytes", "unflushed output"),
            ("closed", "u8", ""),
        ]


# ---------------------------------------------------------------------------
# Block-extent index encoding (shared by the index codec)
# ---------------------------------------------------------------------------


def _encode_chunk_index(w, index) -> None:
    """Write the v2 block-extent index (delta-coded header positions).

    Positions are ascending word indices; each is stored as a ``u8``
    delta from its predecessor (the first from zero).  A delta that does
    not fit (>= 0xFF) stores the escape marker 0xFF and its real value
    in a side array of ``<u4``.  Classes are one ``u8`` per block.
    """
    for positions, classes in index:
        pos = np.asarray(positions, dtype=np.uint32)
        n = int(pos.size)
        w.u32(n)
        deltas = np.diff(pos, prepend=np.uint32(0))
        escaped = deltas >= 0xFF
        small = deltas.astype(np.uint8)
        small[escaped] = 0xFF
        w.bytes_lp(small.tobytes())
        escapes = deltas[escaped].astype("<u4")
        w.u32(int(escapes.size))
        w.raw(escapes.tobytes())
        w.bytes_lp(np.asarray(classes, dtype=np.uint8).tobytes())


def _decode_chunk_index(r, n_chunks: int):
    index = []
    for _ in range(n_chunks):
        n = r.u32()
        small = np.frombuffer(r.bytes_lp(), dtype=np.uint8)
        n_esc = r.u32()
        escapes = np.frombuffer(r._take(4 * n_esc), dtype="<u4")
        classes = np.frombuffer(r.bytes_lp(), dtype=np.uint8)
        if small.size != n or classes.size != n:
            raise CheckpointFormatError("malformed block-extent index")
        deltas = small.astype(np.uint32)
        escaped = small == 0xFF
        if int(escaped.sum()) != n_esc:
            raise CheckpointFormatError("block-extent escape count mismatch")
        deltas[escaped] = escapes
        positions = np.cumsum(deltas, dtype=np.uint64).astype(np.uint32)
        index.append((positions, classes))
    return index
