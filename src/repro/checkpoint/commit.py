"""Crash-consistent checkpoint commit: journal, fsync, atomic rename.

The paper's step 13 ("write the end signature and atomically commit")
promises that a failure *during* checkpointing leaves the previous
checkpoint restorable.  This module makes that promise hold at every
byte offset, not just between steps:

1. A **journal** (`<path>.journal`) records the intent — target path,
   payload size and SHA-256 — and is fsynced before any data moves.
   After a crash, :func:`recover_commit` uses it to tell a completely
   written temp file (safe to roll forward) from a torn one (must be
   rolled back).
2. The payload is written to ``<path>.tmp`` and fsynced.
3. With ``retain > 0``, existing generations rotate (``path`` →
   ``path.1`` → ``path.2`` …), building the chain that
   :func:`generation_chain` walks and fallback restores rely on.
4. ``os.replace`` publishes the new generation atomically, the
   directory is fsynced, and the journal is removed.

Every step is bracketed by a named **commit point** (:data:`COMMIT_POINTS`)
through a :class:`CommitHooks` object, which the fault injectors in
:mod:`repro.faults` override to simulate a crash at any point, a failing
fsync, or a torn rename.  Production code pays one attribute call per
point.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.errors import CheckpointError
from repro.metrics import PhaseTimer

#: Every point at which a commit can be interrupted, in order.  The
#: crash-sim test enumerates these and proves the previous generation
#: survives a crash at each one.
COMMIT_POINTS = (
    "begin",
    "journal_partial",
    "journal_written",
    "journal_synced",
    "tmp_open",
    "tmp_partial",
    "tmp_written",
    "tmp_synced",
    "rotated",
    "renamed",
    "dir_synced",
    "committed",
)


class CommitHooks:
    """Override points for fault injection; the default is a no-op pass-
    through.  ``point`` may raise to simulate a crash at that step;
    ``fsync``/``replace`` wrap the real syscalls."""

    def point(self, name: str) -> None:
        pass

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)


def journal_path(path: str) -> str:
    return path + ".journal"


def tmp_path(path: str) -> str:
    return path + ".tmp"


def _fsync_dir(path: str, hooks: CommitHooks) -> None:
    """Durability barrier on the directory entry (best effort — not
    every platform lets you open a directory)."""
    d = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(d, os.O_RDONLY)
    except OSError:
        return
    try:
        hooks.fsync(fd)
    finally:
        os.close(fd)


def _rotate_generations(path: str, retain: int, hooks: CommitHooks) -> None:
    """Shift ``path`` → ``path.1`` → … keeping at most ``retain`` old
    generations (the oldest is overwritten by the shift)."""
    for i in range(retain - 1, 0, -1):
        src = f"{path}.{i}"
        if os.path.exists(src):
            hooks.replace(src, f"{path}.{i + 1}")
    hooks.replace(path, f"{path}.1")


def atomic_commit(
    path: str,
    data,
    *,
    retain: int = 0,
    hooks: Optional[CommitHooks] = None,
    timer: Optional[PhaseTimer] = None,
) -> int:
    """Durably commit ``data`` (bytes or memoryview) as ``path``.

    Returns the byte count.  ``retain`` keeps that many previous
    generations as ``path.N``.  An :class:`OSError` from a write or
    fsync aborts the commit, removes the partial temp file, and raises
    :class:`~repro.errors.CheckpointError` — the previous generation is
    untouched.  Exceptions raised by ``hooks.point`` (simulated crashes)
    propagate as-is *without* cleanup, exactly like a real crash.
    """
    hooks = hooks or CommitHooks()
    timer = timer or PhaseTimer()
    n = len(data)
    jp, tp = journal_path(path), tmp_path(path)
    try:
        hooks.point("begin")
        with timer.phase("write"):
            journal = json.dumps(
                {
                    "path": os.path.basename(path),
                    "size": n,
                    "sha256": hashlib.sha256(data).hexdigest(),
                    "retain": retain,
                }
            ).encode()
            with open(jp, "wb") as jf:
                jf.write(journal[: len(journal) // 2])
                hooks.point("journal_partial")
                jf.write(journal[len(journal) // 2 :])
                jf.flush()
                hooks.point("journal_written")
                hooks.fsync(jf.fileno())
            hooks.point("journal_synced")
            with open(tp, "wb") as f:
                hooks.point("tmp_open")
                half = n // 2
                f.write(data[:half])
                hooks.point("tmp_partial")
                f.write(data[half:])
                f.flush()
                hooks.point("tmp_written")
                # The durability barrier belongs to the atomic-commit
                # step (paper step 13): the rename must not be
                # reordered before the data blocks it commits.
                with timer.phase("commit"):
                    hooks.fsync(f.fileno())
            hooks.point("tmp_synced")
        with timer.phase("commit"):
            if retain > 0 and os.path.exists(path):
                _rotate_generations(path, retain, hooks)
            hooks.point("rotated")
            hooks.replace(tp, path)
            hooks.point("renamed")
            _fsync_dir(path, hooks)
            hooks.point("dir_synced")
            try:
                os.unlink(jp)
            except FileNotFoundError:
                pass
            hooks.point("committed")
    except OSError as e:
        for leftover in (tp, jp):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        raise CheckpointError(
            f"checkpoint commit of {path} aborted: {e}"
        ) from e
    return n


def _file_sha256(path: str) -> Optional[str]:
    try:
        h = hashlib.sha256()
        with open(path, "rb") as f:
            for block in iter(lambda: f.read(1 << 20), b""):
                h.update(block)
        return h.hexdigest()
    except OSError:
        return None


def recover_commit(path: str) -> str:
    """Resolve a commit interrupted by a crash; returns what was done.

    * ``"clean"`` — no journal, no temp file: nothing to do.
    * ``"discarded_tmp"`` — a stray temp file without a journal (crash
      before the journal existed, or a pre-journal writer): removed.
    * ``"rolled_forward"`` — the journal matches a complete, durable
      temp file; the rename is re-executed, publishing the generation
      the crash interrupted.
    * ``"already_committed"`` — the crash hit between the rename and the
      journal cleanup; only the journal needed removing.
    * ``"rolled_back"`` — the temp file is torn (or the journal is
      unreadable); both are removed and the previous generation stays
      the newest.
    """
    jp, tp = journal_path(path), tmp_path(path)
    if not os.path.exists(jp):
        if os.path.exists(tp):
            os.unlink(tp)
            return "discarded_tmp"
        return "clean"
    intent = None
    try:
        with open(jp, "r", encoding="utf-8") as f:
            intent = json.load(f)
        if not isinstance(intent.get("sha256"), str) or not isinstance(
            intent.get("size"), int
        ):
            intent = None
    except (OSError, ValueError):
        intent = None
    if intent is not None and os.path.exists(tp):
        if (
            os.path.getsize(tp) == intent["size"]
            and _file_sha256(tp) == intent["sha256"]
        ):
            # Re-execute the interrupted tail of the protocol, including
            # the rotation the crash may have preempted — otherwise the
            # roll-forward would overwrite (and so silently drop) the
            # previous generation from the retained chain.
            retain = intent.get("retain", 0)
            if isinstance(retain, int) and retain > 0 and os.path.exists(path):
                _rotate_generations(path, retain, CommitHooks())
            os.replace(tp, path)
            _fsync_dir(path, CommitHooks())
            os.unlink(jp)
            return "rolled_forward"
    if (
        intent is not None
        and not os.path.exists(tp)
        and os.path.exists(path)
        and os.path.getsize(path) == intent["size"]
        and _file_sha256(path) == intent["sha256"]
    ):
        os.unlink(jp)
        return "already_committed"
    for leftover in (tp, jp):
        try:
            os.unlink(leftover)
        except OSError:
            pass
    return "rolled_back"


def generation_chain(path: str) -> list[str]:
    """Existing generations, newest first: ``path``, ``path.1``, …

    The head may be missing (a crash between rotation and rename); the
    chain then starts at ``path.1``.  Numbering stops at the first gap.
    """
    out = []
    if os.path.exists(path):
        out.append(path)
    i = 1
    while os.path.exists(f"{path}.{i}"):
        out.append(f"{path}.{i}")
        i += 1
    return out
