"""The checkpoint mechanism (paper §4.1, Figure 4).

The fourteen steps, mapped onto this implementation:

1.  *Fork.*  POSIX personalities snapshot the VM state in memory (the
    moral equivalent of the child's copy-on-write image) and serialize +
    write it on a background thread while the application continues.
    The NT personality has no fork, so the whole write happens inline,
    blocking the application — reproducing the paper's "overhead on NT
    is higher".
2.  Minor collection, so the young generation is empty and not saved.
3.  Disable the thread-scheduling timer while state is captured.
4.  Open a temporary checkpoint file.
5.  Save the architecture marker (the value one) and application type.
6.  Save boundary addresses of all memory areas.
7.  Save the abstract registers (per thread).
8.  Dump the major heap chunk by chunk.
9.  Save VM globals (freelist head, global_data) and the atom table.
10. Save the application stack (the used region).
11. Save all other thread stacks and thread state.
12. Save channel information.
13. Write the end signature and atomically commit
    (temp file + ``os.replace``).
14. "Terminate the checkpointer process" — join the writer thread.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.checkpoint.format import (
    AreaRecord,
    CheckpointHeader,
    RegisterRecord,
    ThreadRecord,
    VMSnapshot,
    serialize_snapshot,
)
from repro.errors import CheckpointError
from repro.metrics import PhaseTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine


@dataclass
class CheckpointStats:
    """Timings and sizes for one checkpoint (drives Figures 10/11/13)."""

    path: str = ""
    file_bytes: int = 0
    heap_words: int = 0
    #: Wall time the *application* was blocked (snapshot build, or the
    #: whole write in blocking mode).
    blocking_seconds: float = 0.0
    #: Phase breakdown of the checkpointer's work (Figure 13).
    phases: PhaseTimer = field(default_factory=PhaseTimer)
    mode: str = "background"

    @property
    def writer_seconds(self) -> float:
        """Total checkpointer time across phases."""
        return self.phases.total


def build_snapshot(vm: "VirtualMachine", timer: Optional[PhaseTimer] = None) -> VMSnapshot:
    """Capture checkpointable state at the current safe point.

    Performs the minor collection (step 2) so the young generation need
    not be saved, then copies every area the restart will need.
    """
    timer = timer or PhaseTimer()
    # Step 2: empty the young generation.  A *pure* minor collection, as
    # in the paper — the incremental major slice the mutator owes stays
    # owed and is paid at the next ordinary allocation-triggered GC.
    with timer.phase("minor_gc"):
        vm.gc.minor.collect()
    assert vm.mem.minor.is_empty()

    # Step 3: capture with the scheduler timer off.
    timer_was = vm.sched.timer_enabled
    vm.sched.timer_enabled = False
    try:
        # Make thread records uniform: park live registers.
        current = vm.sched.current
        vm.interp.save_to_thread(current)

        with timer.phase("registers"):
            threads = []
            for tid in sorted(vm.sched.threads):
                t = vm.sched.threads[tid]
                stack = t.stack
                regs = RegisterRecord(
                    pc=vm.code_base + 4 * t.pc,
                    sp=stack.sp,
                    accu=t.accu,
                    env=t.env,
                    extra_args=t.extra_args,
                    trapsp=t.trapsp,
                )
                threads.append(
                    ThreadRecord(
                        tid=t.tid,
                        state=t.state.value,
                        block_kind=t.block_kind.value,
                        blocked_on=t.blocked_on,
                        pending_mutex=t.pending_mutex,
                        result=t.result,
                        regs=regs,
                        stack_base=stack.area.base,
                        stack_high=stack.stack_high,
                        capacity_words=stack.n_words,
                        stack_words=[],  # filled below, timed as "stack"
                    )
                )

        # Step 6: boundaries of every mapped area plus the code segment.
        with timer.phase("boundaries"):
            boundaries = [
                AreaRecord(a.kind.value, a.label, a.base, a.n_words)
                for a in vm.mem.space.areas()
            ]
            boundaries.append(
                AreaRecord("code", "code", vm.code_base, len(vm.code.units))
            )

        # Step 8: dump the major heap (copy now; encode later).
        with timer.phase("heap_dump"):
            heap_chunks = [
                (c.base, list(c.area.words)) for c in vm.mem.heap.chunks
            ]
            heap_words = sum(c.n_words for c in vm.mem.heap.chunks)

        # Step 9: globals + atoms.
        with timer.phase("globals_atoms"):
            atom_words = list(vm.mem.atoms.area.words)
            cglobal_words = list(vm.mem.cglobals.area.words[: vm.mem.cglobals.used_words])
            cglobal_roots = list(vm.mem.cglobals.root_indices)

        # Steps 10-11: stacks (used regions, top first).
        with timer.phase("stack"):
            threads = [
                ThreadRecord(
                    tid=t.tid,
                    state=t.state,
                    block_kind=t.block_kind,
                    blocked_on=t.blocked_on,
                    pending_mutex=t.pending_mutex,
                    result=t.result,
                    regs=t.regs,
                    stack_base=t.stack_base,
                    stack_high=t.stack_high,
                    capacity_words=t.capacity_words,
                    stack_words=vm.sched.threads[t.tid].stack.used_slice(),
                )
                for t in threads
            ]

        # Step 12: channels.
        with timer.phase("channels"):
            channels = vm.channels.snapshot()

        header = CheckpointHeader(
            word_bytes=vm.platform.arch.word_bytes,
            endianness=vm.platform.arch.endianness,
            platform_name=vm.platform.name,
            os_name=vm.platform.os.value,
            multithreaded=vm.is_multithreaded,
            current_tid=current.tid,
            code_digest=vm.code.digest(),
            code_len=len(vm.code.units),
        )
        snap = VMSnapshot(
            header=header,
            boundaries=boundaries,
            freelist_head=vm.mem.heap.freelist_head,
            global_data=vm.global_data,
            allocated_words=vm.mem.heap.allocated_words,
            heap_chunks=heap_chunks,
            atom_words=atom_words,
            cglobal_words=cglobal_words,
            cglobal_roots=cglobal_roots,
            threads=threads,
            channels=channels,
        )
        snap._heap_words = heap_words  # type: ignore[attr-defined]
        return snap
    finally:
        vm.sched.timer_enabled = timer_was


def write_snapshot(snap: VMSnapshot, path: str, timer: PhaseTimer) -> int:
    """Serialize and atomically commit a snapshot; returns file size.

    The temporary-file-then-rename protocol guarantees a failure during
    checkpointing leaves the previous checkpoint intact (paper §4.1).
    """
    with timer.phase("serialize"):
        payload = serialize_snapshot(snap)
    tmp_path = path + ".tmp"
    with timer.phase("write"):
        with open(tmp_path, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
    with timer.phase("commit"):
        os.replace(tmp_path, path)
    return len(payload)


class CheckpointWriter:
    """Coordinates checkpoint capture and the write-out strategy."""

    def __init__(self, vm: "VirtualMachine") -> None:
        self.vm = vm

    def _mode(self) -> str:
        cfg = self.vm.config.chkpt_mode
        if cfg in ("blocking", "background"):
            return cfg
        return "background" if self.vm.platform.supports_fork else "blocking"

    def checkpoint(self, path: str) -> CheckpointStats:
        """Take one checkpoint; returns its stats.

        In background mode the application is only blocked for the
        snapshot build; the serialization and disk I/O happen on the
        writer thread (the "child process").
        """
        vm = self.vm
        mode = self._mode()
        stats = CheckpointStats(path=path, mode=mode)
        timer = stats.phases
        # Wait out any previous in-flight writer (one checkpoint at a time,
        # like the paper's single checkpoint file).
        vm.join_background_checkpoint()

        t0 = time.perf_counter()
        snap = build_snapshot(vm, timer)
        stats.heap_words = getattr(snap, "_heap_words", 0)

        if mode == "blocking":
            stats.file_bytes = write_snapshot(snap, path, timer)
            stats.blocking_seconds = time.perf_counter() - t0
        else:
            stats.blocking_seconds = time.perf_counter() - t0

            def _writer() -> None:
                try:
                    stats.file_bytes = write_snapshot(snap, path, timer)
                except Exception as exc:  # pragma: no cover - I/O failure
                    stats.file_bytes = -1
                    stats.error = exc  # type: ignore[attr-defined]

            thread = threading.Thread(
                target=_writer, name="checkpoint-writer", daemon=True
            )
            vm._background_writer = thread
            thread.start()
        return stats
