"""The checkpoint mechanism (paper §4.1, Figure 4).

The fourteen steps, mapped onto this implementation:

1.  *Fork.*  POSIX personalities snapshot the VM state in memory (the
    moral equivalent of the child's copy-on-write image) and serialize +
    write it on a background thread while the application continues.
    The NT personality has no fork, so the whole write happens inline,
    blocking the application — reproducing the paper's "overhead on NT
    is higher".
2.  Minor collection, so the young generation is empty and not saved.
3.  Disable the thread-scheduling timer while state is captured.
4.  Open a temporary checkpoint file.
5.  Save the architecture marker (the value one) and application type.
6.  Save boundary addresses of all memory areas.
7.  Save the abstract registers (per thread).
8.  Dump the major heap chunk by chunk.
9.  Save VM globals (freelist head, global_data) and the atom table.
10. Save the application stack (the used region).
11. Save all other thread stacks and thread state.
12. Save channel information.
13. Write the end signature and atomically commit
    (temp file + ``os.replace``).
14. "Terminate the checkpointer process" — join the writer thread.
"""

from __future__ import annotations

import array
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.checkpoint.commit import CommitHooks, atomic_commit
from repro.checkpoint.format import (
    CLASS_DOUBLE,
    CLASS_FREE,
    CLASS_OPAQUE,
    CLASS_SCAN,
    CLASS_STRING,
    AreaRecord,
    CheckpointHeader,
    DeltaChunkRecord,
    DeltaInfo,
    RegisterRecord,
    ThreadRecord,
    VMSnapshot,
    serialize_snapshot,
    serialize_snapshot_writer,
)
from repro.checkpoint.schema import FormatProfile
from repro.errors import CheckpointError
from repro.memory.blocks import Color, DOUBLE_TAG, NO_SCAN_TAG, STRING_TAG
from repro.metrics import DELTA, PhaseTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine


@dataclass
class CheckpointStats:
    """Timings and sizes for one checkpoint (drives Figures 10/11/13)."""

    path: str = ""
    file_bytes: int = 0
    heap_words: int = 0
    #: Wall time the *application* was blocked (snapshot build, or the
    #: whole write in blocking mode).
    blocking_seconds: float = 0.0
    #: Phase breakdown of the checkpointer's work (Figure 13).
    phases: PhaseTimer = field(default_factory=PhaseTimer)
    mode: str = "background"
    #: "full" or "delta" (format v4 incremental checkpoint).
    kind: str = "full"
    #: Delta bookkeeping (zero for full checkpoints).
    dirty_words: int = 0
    total_words: int = 0
    chain_depth: int = 0
    #: True once the write finished (set immediately in blocking mode;
    #: by :meth:`VirtualMachine.join_background_checkpoint` otherwise).
    #: ``file_bytes`` is unreliable until then — background callers must
    #: join before reading it.
    completed: bool = False
    #: The writer-thread failure, surfaced as a typed error at join.
    error: Optional[BaseException] = None

    @property
    def writer_seconds(self) -> float:
        """Total checkpointer time across phases."""
        return self.phases.total


def build_snapshot(
    vm: "VirtualMachine",
    timer: Optional[PhaseTimer] = None,
    defer_unbox: bool = False,
    try_delta: bool = False,
) -> VMSnapshot:
    """Capture checkpointable state at the current safe point.

    Performs the minor collection (step 2) so the young generation need
    not be saved, then copies every area the restart will need.

    ``defer_unbox`` (background mode) keeps the blocking window at its
    minimum — heap chunks are captured as plain list copies and the
    numpy conversion happens on the writer thread.  In blocking mode the
    conversion *is* the capture (one pass instead of copy-then-convert).

    With ``try_delta`` (the caller has already verified a usable parent
    generation exists) the capture inspects the dirty-region tracker
    *after* the minor collection — promotion dirties regions — and, if
    the dirty ratio stays under ``chkpt_dirty_threshold``, copies only
    the dirty runs of each chunk into a format-v4 delta snapshot.
    Either way the tracker is cleared inside the blocking window, so
    the next delta measures mutation since *this* capture.
    """
    timer = timer or PhaseTimer()
    # A checkpoint taken mid-lazy-restore must dump *converted* words:
    # the heap capture below copies staged chunk arrays verbatim, so
    # force every pending first-touch thunk now, inside the blocking
    # window.  The same barrier forces any still-deferred section
    # verification (unread heap payloads, the whole-body SHA-256, the
    # end-of-file CRC) — a corrupt source fails here, typed, rather
    # than silently re-serializing unverified bytes.  This is what
    # makes a mid-lazy-restore checkpoint commit bit-identically to
    # one taken after an eager restore.
    if vm.lazy_restore is not None:
        with timer.phase("lazy_finish"):
            vm.finish_lazy_restore()
    # Step 2: empty the young generation.  A *pure* minor collection, as
    # in the paper — the incremental major slice the mutator owes stays
    # owed and is paid at the next ordinary allocation-triggered GC.
    with timer.phase("minor_gc"):
        vm.gc.minor.collect()
    assert vm.mem.minor.is_empty()

    # Delta feasibility: decided after the minor GC (promotion marks
    # regions) and inside the blocking window (the tracker is live).
    dirty = None
    delta_mode = False
    dirty_word_count = 0
    if try_delta:
        dirty = vm.mem.dirty.snapshot()
        if not dirty.force_full:
            geometry = [(c.base, c.n_words) for c in vm.mem.heap.chunks]
            total = sum(n for _, n in geometry)
            dirty_word_count = dirty.dirty_words(geometry)
            delta_mode = (
                total == 0
                or dirty_word_count / total <= vm.config.chkpt_dirty_threshold
            )

    # Step 3: capture with the scheduler timer off.
    timer_was = vm.sched.timer_enabled
    vm.sched.timer_enabled = False
    try:
        # Make thread records uniform: park live registers.
        current = vm.sched.current
        vm.interp.save_to_thread(current)

        with timer.phase("registers"):
            threads = []
            for tid in sorted(vm.sched.threads):
                t = vm.sched.threads[tid]
                stack = t.stack
                regs = RegisterRecord(
                    pc=vm.code_base + 4 * t.pc,
                    sp=stack.sp,
                    accu=t.accu,
                    env=t.env,
                    extra_args=t.extra_args,
                    trapsp=t.trapsp,
                )
                threads.append(
                    ThreadRecord(
                        tid=t.tid,
                        state=t.state.value,
                        block_kind=t.block_kind.value,
                        blocked_on=t.blocked_on,
                        pending_mutex=t.pending_mutex,
                        result=t.result,
                        regs=regs,
                        stack_base=stack.area.base,
                        stack_high=stack.stack_high,
                        capacity_words=stack.n_words,
                        stack_words=[],  # filled below, timed as "stack"
                    )
                )

        # Step 6: boundaries of every mapped area plus the code segment.
        with timer.phase("boundaries"):
            boundaries = [
                AreaRecord(a.kind.value, a.label, a.base, a.n_words)
                for a in vm.mem.space.areas()
            ]
            boundaries.append(
                AreaRecord("code", "code", vm.code_base, len(vm.code.units))
            )

        # Step 8: dump the major heap (copy now; encode later).  The
        # vectorized path also captures each chunk's block-header
        # positions inside the blocking window (the header maps keep
        # changing once the application resumes); the per-block classes
        # derive from the copied words later, outside the window.
        vectorize = vm.config.vectorize
        wb = vm.platform.arch.word_bytes
        chunk_positions: Optional[list[np.ndarray]] = None
        chunk_headers: Optional[list[np.ndarray]] = None
        heap_chunks: list = []
        delta_chunks: list[DeltaChunkRecord] = []
        with timer.phase("heap_dump"):
            if delta_mode:
                # Copy only the dirty runs of each chunk.  Every mapped
                # chunk gets a record (its geometry is needed to
                # reconstruct new chunks and drop vanished ones).
                with timer.kernel("dirty_copy"):
                    for c in vm.mem.heap.chunks:
                        runs = dirty.chunk_runs(c.base, c.n_words)
                        staged = (
                            c.area.peek_staged() if vectorize else None
                        )
                        regions = []
                        for start, n in runs:
                            if staged is not None:
                                regions.append(
                                    (start, staged[start : start + n].copy())
                                )
                            elif vectorize and not defer_unbox:
                                regions.append((
                                    start,
                                    _unbox_words(
                                        c.area.words[start : start + n], wb
                                    ),
                                ))
                            else:
                                regions.append(
                                    (start, c.area.words[start : start + n])
                                )
                        delta_chunks.append(
                            DeltaChunkRecord(c.base, c.n_words, regions)
                        )
                if vectorize:
                    # The block-extent index covers the reconstructed
                    # heap, so header positions *and values* must be
                    # captured in the window (the mutator keeps
                    # rewriting headers once it resumes).
                    chunk_positions = []
                    chunk_headers = []
                    with timer.kernel("block_positions"):
                        for c in vm.mem.heap.chunks:
                            pos = vm.mem.heap.block_positions(c)
                            chunk_positions.append(pos)
                            staged = c.area.peek_staged()
                            if staged is not None:
                                chunk_headers.append(
                                    staged[pos].astype(np.uint64)
                                )
                            else:
                                ws = c.area.words
                                chunk_headers.append(
                                    np.fromiter(
                                        (ws[i] for i in pos.tolist()),
                                        dtype=np.uint64,
                                        count=int(pos.size),
                                    )
                                )
            elif vectorize:
                chunk_positions = []
                with timer.kernel("unbox"):
                    for c in vm.mem.heap.chunks:
                        staged = c.area.peek_staged()
                        if staged is not None:
                            heap_chunks.append((c.base, staged.copy()))
                        elif defer_unbox:
                            heap_chunks.append((c.base, list(c.area.words)))
                        else:
                            heap_chunks.append(
                                (c.base, _unbox_words(c.area.words, wb))
                            )
                with timer.kernel("block_positions"):
                    for c in vm.mem.heap.chunks:
                        chunk_positions.append(
                            vm.mem.heap.block_positions(c)
                        )
            else:
                heap_chunks = [
                    (c.base, list(c.area.words)) for c in vm.mem.heap.chunks
                ]
            heap_words = sum(c.n_words for c in vm.mem.heap.chunks)

        # Step 9: globals + atoms.  A delta omits the atom table (static
        # after VM init) and the C-global dump when nothing wrote it.
        with timer.phase("globals_atoms"):
            if delta_mode:
                atom_words = []
                if dirty.globals_dirty:
                    cglobal_words = list(
                        vm.mem.cglobals.area.words[: vm.mem.cglobals.used_words]
                    )
                    cglobal_roots = list(vm.mem.cglobals.root_indices)
                else:
                    cglobal_words = []
                    cglobal_roots = []
            else:
                atom_words = list(vm.mem.atoms.area.words)
                cglobal_words = list(
                    vm.mem.cglobals.area.words[: vm.mem.cglobals.used_words]
                )
                cglobal_roots = list(vm.mem.cglobals.root_indices)

        # Steps 10-11: stacks (used regions, top first).
        with timer.phase("stack"):
            threads = [
                ThreadRecord(
                    tid=t.tid,
                    state=t.state,
                    block_kind=t.block_kind,
                    blocked_on=t.blocked_on,
                    pending_mutex=t.pending_mutex,
                    result=t.result,
                    regs=t.regs,
                    stack_base=t.stack_base,
                    stack_high=t.stack_high,
                    capacity_words=t.capacity_words,
                    stack_words=vm.sched.threads[t.tid].stack.used_slice(),
                )
                for t in threads
            ]

        # Step 12: channels.
        with timer.phase("channels"):
            channels = vm.channels.snapshot()

        delta_info = None
        if delta_mode:
            delta_info = DeltaInfo(
                parent_sha256=vm.delta_parent_sha,
                chain_depth=vm.delta_depth + 1,
                dirty_words=dirty_word_count,
                total_words=heap_words,
                has_atoms=False,
                has_cglobals=dirty.globals_dirty,
                chunks=delta_chunks,
            )

        header = CheckpointHeader(
            format_version=(
                FormatProfile.delta_profile().version
                if delta_mode
                else vm.config.chkpt_format
            ),
            word_bytes=vm.platform.arch.word_bytes,
            endianness=vm.platform.arch.endianness,
            platform_name=vm.platform.name,
            os_name=vm.platform.os.value,
            multithreaded=vm.is_multithreaded,
            current_tid=current.tid,
            code_digest=vm.code.digest(),
            code_len=len(vm.code.units),
        )
        snap = VMSnapshot(
            header=header,
            boundaries=boundaries,
            freelist_head=vm.mem.heap.freelist_head,
            global_data=vm.global_data,
            allocated_words=vm.mem.heap.allocated_words,
            heap_chunks=heap_chunks,
            atom_words=atom_words,
            cglobal_words=cglobal_words,
            cglobal_roots=cglobal_roots,
            threads=threads,
            channels=channels,
            delta=delta_info,
        )
        snap._heap_words = heap_words  # type: ignore[attr-defined]
        snap._chunk_positions = chunk_positions  # type: ignore[attr-defined]
        snap._chunk_headers = chunk_headers  # type: ignore[attr-defined]
        snap._dirty_regions = (  # type: ignore[attr-defined]
            len(dirty.region_ids) if delta_mode else 0
        )
        # Reset the tracker inside the blocking window: whatever the
        # mutator writes from here on is mutation since this capture.
        vm.mem.dirty.clear()
        return snap
    finally:
        vm.sched.timer_enabled = timer_was


def _unbox_words(words: list[int], word_bytes: int) -> np.ndarray:
    """Convert a word list to a numpy array of the matching width.

    ``array.array`` unboxes Python ints several times faster than
    ``np.asarray`` on a list; the OverflowError fallback covers lists
    holding values outside the machine word range (never produced by a
    consistent VM, but cheap insurance).
    """
    try:
        packed = array.array("I" if word_bytes == 4 else "Q", words)
    except OverflowError:
        mask = np.uint64((1 << (8 * word_bytes)) - 1)
        return np.asarray(words, dtype=np.uint64) & mask
    return np.frombuffer(
        packed, dtype=np.uint32 if word_bytes == 4 else np.uint64
    )


def _classify_header_words(hds: np.ndarray) -> np.ndarray:
    """Per-block CLASS_* codes from an array of header words."""
    tags = hds & hds.dtype.type(0xFF)
    colors = (hds >> hds.dtype.type(8)) & hds.dtype.type(3)
    classes = np.full(hds.size, CLASS_SCAN, dtype=np.uint8)
    classes[tags >= NO_SCAN_TAG] = CLASS_OPAQUE
    classes[tags == STRING_TAG] = CLASS_STRING
    classes[tags == DOUBLE_TAG] = CLASS_DOUBLE
    classes[colors == Color.BLUE.value] = CLASS_FREE
    return classes


def _classify_blocks(arr: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Per-block CLASS_* codes from the headers at ``positions``."""
    return _classify_header_words(arr[positions])


def _finalize_snapshot(snap: VMSnapshot) -> None:
    """Normalize a vectorized snapshot for serialization.

    Runs on the writer thread in background mode (the snapshot's copies
    are private by then): unboxes any chunk still held as a list and
    derives the block-extent index classes from the captured positions.
    A delta snapshot unboxes its dirty regions instead and classifies
    from the header *values* captured in the blocking window (the delta
    carries no full chunk arrays to index into).
    """
    positions = getattr(snap, "_chunk_positions", None)
    if positions is None:
        return
    wb = snap.header.word_bytes
    if snap.delta is not None:
        headers = getattr(snap, "_chunk_headers", None) or []
        chunks = []
        index = []
        for rec, pos, hds in zip(snap.delta.chunks, positions, headers):
            regions = [
                (
                    start,
                    words
                    if isinstance(words, np.ndarray)
                    else _unbox_words(words, wb),
                )
                for start, words in rec.regions
            ]
            chunks.append(DeltaChunkRecord(rec.base, rec.n_words, regions))
            index.append((pos, _classify_header_words(hds)))
        snap.delta = replace(snap.delta, chunks=chunks)
        snap.chunk_index = index
        snap._chunk_positions = None  # type: ignore[attr-defined]
        snap._chunk_headers = None  # type: ignore[attr-defined]
        return
    chunks = []
    index = []
    for (base, words), pos in zip(snap.heap_chunks, positions):
        arr = (
            words
            if isinstance(words, np.ndarray)
            else _unbox_words(words, wb)
        )
        chunks.append((base, arr))
        index.append((pos, _classify_blocks(arr, pos)))
    snap.heap_chunks = chunks
    snap.chunk_index = index
    snap._chunk_positions = None  # type: ignore[attr-defined]


def write_snapshot(
    snap: VMSnapshot,
    path: str,
    timer: PhaseTimer,
    *,
    retain: int = 0,
    hooks: Optional[CommitHooks] = None,
) -> int:
    """Serialize and atomically commit a snapshot; returns file size.

    The journal + temporary-file + rename protocol of
    :func:`repro.checkpoint.commit.atomic_commit` guarantees a failure
    at *any byte offset* during checkpointing leaves the previous
    checkpoint (or generation chain, with ``retain > 0``) intact
    (paper §4.1).
    """
    vectorized = getattr(snap, "_chunk_positions", None) is not None or (
        snap.chunk_index is not None
    )
    with timer.phase("serialize"):
        _finalize_snapshot(snap)
        if vectorized:
            w = serialize_snapshot_writer(snap)
            view = w.buf.getbuffer()
        else:
            # Scalar reference path: seed-equivalent serialization with
            # its body copies intact (this is the baseline the
            # vectorized path is benchmarked against).
            view = serialize_snapshot(snap)
    try:
        n_bytes = atomic_commit(
            path, view, retain=retain, hooks=hooks, timer=timer
        )
    finally:
        if vectorized:
            view.release()
    return n_bytes


class CheckpointWriter:
    """Coordinates checkpoint capture and the write-out strategy."""

    def __init__(self, vm: "VirtualMachine") -> None:
        self.vm = vm

    def _mode(self) -> str:
        cfg = self.vm.config.chkpt_mode
        if cfg == "blocking":
            return "blocking"
        # "background" (explicit or auto) degrades to blocking on
        # platforms without fork — the NT personality has no child
        # process to hand the write to, so honoring the request would
        # hand a mutating VM to a concurrent serializer.
        return "background" if self.vm.platform.supports_fork else "blocking"

    def checkpoint(self, path: str) -> CheckpointStats:
        """Take one checkpoint; returns its stats.

        In background mode the application is only blocked for the
        snapshot build; the serialization and disk I/O happen on the
        writer thread (the "child process").
        """
        vm = self.vm
        mode = self._mode()
        stats = CheckpointStats(path=path, mode=mode)
        timer = stats.phases
        cfg = vm.config
        retain = cfg.chkpt_retain
        hooks = cfg.commit_hooks
        # Wait out any previous in-flight writer (one checkpoint at a time,
        # like the paper's single checkpoint file).  Must happen before
        # the delta decision: a failed writer resets the parent chain.
        vm.join_background_checkpoint()

        # Delta preconditions that don't depend on the dirty state; the
        # dirty-ratio check happens inside the capture window.  The base
        # of a depth-d chain lives at ``path.d`` after rotation, so the
        # retention window must be at least that deep.
        next_depth = vm.delta_depth + 1
        try_delta = (
            cfg.chkpt_incremental
            and FormatProfile.for_version(cfg.chkpt_format).delta_base_capable
            and vm.delta_parent_sha is not None
            and vm.delta_parent_path == path
            and retain >= next_depth
            and (cfg.chkpt_full_every <= 0 or next_depth < cfg.chkpt_full_every)
        )

        t0 = time.perf_counter()
        snap = build_snapshot(
            vm, timer, defer_unbox=(mode == "background"), try_delta=try_delta
        )
        stats.heap_words = getattr(snap, "_heap_words", 0)
        info = snap.delta
        if info is not None:
            stats.kind = "delta"
            stats.dirty_words = info.dirty_words
            stats.total_words = info.total_words
            stats.chain_depth = info.chain_depth
        dirty_regions = getattr(snap, "_dirty_regions", 0)
        wb = vm.platform.arch.word_bytes

        def _commit_success(n_bytes: int) -> None:
            # The committed file is the parent of the next delta.  In
            # background mode this runs on the writer thread: safe,
            # because the next checkpoint joins it before reading.
            vm.delta_parent_sha = snap.body_sha256
            vm.delta_parent_path = path
            vm.delta_depth = info.chain_depth if info is not None else 0
            if info is not None:
                DELTA.checkpoints_delta += 1
                DELTA.dirty_regions += dirty_regions
                DELTA.delta_bytes_saved += max(
                    0, stats.heap_words * wb - n_bytes
                )
            else:
                DELTA.checkpoints_full += 1

        def _commit_failure() -> None:
            # The dirty information was cleared at capture but the
            # generation it measured against never committed: poison
            # the tracker so the next checkpoint goes full.
            vm.mem.dirty.mark_all()
            vm.delta_parent_sha = None
            vm.delta_parent_path = None
            vm.delta_depth = 0

        if mode == "blocking":
            try:
                stats.file_bytes = write_snapshot(
                    snap, path, timer, retain=retain, hooks=hooks
                )
            except Exception:
                _commit_failure()
                raise
            stats.blocking_seconds = time.perf_counter() - t0
            stats.completed = True
            _commit_success(stats.file_bytes)
        else:
            stats.blocking_seconds = time.perf_counter() - t0

            def _writer() -> None:
                try:
                    stats.file_bytes = write_snapshot(
                        snap, path, timer, retain=retain, hooks=hooks
                    )
                    _commit_success(stats.file_bytes)
                except Exception as exc:  # pragma: no cover - I/O failure
                    stats.file_bytes = -1
                    stats.error = exc

            thread = threading.Thread(
                target=_writer, name="checkpoint-writer", daemon=True
            )
            vm._background_writer = thread
            vm._background_stats = stats
            thread.start()
        return stats
