"""Pointer adjustment: saved boundary addresses -> new addresses (§3.2.2).

"During checkpointing, we save the memory boundaries of all these
areas.  Then, during restart, for each value, we first examine if it is
a pointer and into which memory area it was pointing.  We verify this
by comparing the pointer value with all the saved boundaries.  Lastly,
we adjust the pointer to the new address by adding the offset to the
beginning of the specified memory area."

The :class:`AddressMapper` implements exactly that, with the index-based
refinements cross-word-size restarts require: atom and C-global slots
are mapped by *index* (their byte offsets scale with the word size),
code addresses by 32-bit unit index, and heap pointers either by chunk
offset (same word size) or through the block relocation table built
while the heap was re-encoded.
"""

from __future__ import annotations

import bisect
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.checkpoint.format import AreaRecord, VMSnapshot
from repro.errors import RestartError
from repro.memory.layout import AreaKind

# Row kinds of the vectorized mapping table (see AddressMapper.map_many).
_ROW_UNIFORM = 0
_ROW_STACK = 1
_ROW_HEAP_RELOC = 2
_ROW_BAD = 3

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine


class AddressMapper:
    """Maps source-machine addresses to target-machine addresses."""

    def __init__(
        self,
        snap: VMSnapshot,
        vm: "VirtualMachine",
        heap_relocation: Optional[dict[int, int]] = None,
    ) -> None:
        self.vm = vm
        self.src_wb = snap.arch.word_bytes
        self.dst_wb = vm.platform.arch.word_bytes
        #: Block-exact relocation table (word-size-changing restarts).
        self.heap_relocation = heap_relocation
        #: Source areas sorted by base for binary search.
        self._areas: list[AreaRecord] = sorted(
            snap.boundaries, key=lambda a: a.base
        )
        self._bases = [a.base for a in self._areas]
        # Target resolution tables.
        self._heap_chunk_targets: dict[int, int] = {}
        src_chunk_bases = [base for base, _ in snap.heap_chunks]
        dst_chunks = vm.mem.heap.chunks
        if heap_relocation is None:
            if len(src_chunk_bases) != len(dst_chunks):
                raise RestartError(
                    "heap chunk count mismatch between checkpoint and VM"
                )
            for src_base, chunk in zip(src_chunk_bases, dst_chunks):
                self._heap_chunk_targets[src_base] = chunk.base
        # Thread stacks: label -> (source high, target high).
        self._stack_highs: dict[str, tuple[int, int]] = {}
        by_label = {a.label: a for a in snap.boundaries}
        for tid, t in vm.sched.threads.items():
            label = t.stack.label
            src = by_label.get(label)
            if src is not None:
                src_high = src.base + src.n_words * self.src_wb
                self._stack_highs[label] = (src_high, t.stack.stack_high)
        self._misses = 0
        self._tables = None  # lazy vectorized mapping tables (map_many)
        code_rec = next((a for a in snap.boundaries if a.kind == "code"), None)
        #: One-past-the-end code address: a thread that ran off the end
        #: of the program (a finished thread's saved PC) parks here.
        self._code_end = (
            code_rec.base + 4 * code_rec.n_words if code_rec else None
        )

    # -- queries ----------------------------------------------------------------

    def source_area(self, addr: int) -> Optional[AreaRecord]:
        """Boundary-compare: which saved area contained this address?"""
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            area = self._areas[i]
            if addr < area.base + area.n_words * self.src_wb:
                return area
        return None

    def map(self, addr: int) -> Optional[int]:
        """Adjust one pointer; ``None`` if it lies in no saved area."""
        if addr == self._code_end:
            return self.vm.code_base + 4 * len(self.vm.code.units)
        area = self.source_area(addr)
        if area is None:
            return None
        kind = area.kind
        if kind == AreaKind.HEAP_CHUNK.value:
            return self._map_heap(addr, area)
        if kind == "code":
            unit = (addr - area.base) // 4
            return self.vm.code_base + 4 * unit
        if kind == AreaKind.ATOMS.value:
            tag = (addr - area.base) // self.src_wb - 1
            return self.vm.mem.atoms.atom(tag)
        if kind == AreaKind.C_GLOBALS.value:
            slot = (addr - area.base) // self.src_wb
            return self.vm.mem.cglobals.area.base + slot * self.dst_wb
        if kind in (AreaKind.STACK.value, AreaKind.THREAD_STACK.value):
            highs = self._stack_highs.get(area.label)
            if highs is None:
                raise RestartError(f"no target stack for {area.label!r}")
            src_high, dst_high = highs
            slots_below_high = (src_high - addr) // self.src_wb
            return dst_high - slots_below_high * self.dst_wb
        if kind == AreaKind.MINOR_HEAP.value:
            # The writer ran a minor collection: nothing may point here.
            raise RestartError(
                "checkpoint contains a pointer into the (empty) young "
                "generation — corrupt file?"
            )
        raise RestartError(f"cannot map pointer into area kind {kind!r}")

    def _map_heap(self, addr: int, area: AreaRecord) -> Optional[int]:
        if self.heap_relocation is not None:
            target = self.heap_relocation.get(addr)
            if target is None:
                # A pointer held by a dead (unreachable) block whose
                # referent was on the freelist and therefore not rebuilt.
                self._misses += 1
                return None
            return target
        return self._heap_chunk_targets[area.base] + (addr - area.base)

    @property
    def dangling_pointers(self) -> int:
        """Pointers into dropped free blocks (dead data only)."""
        return self._misses

    # -- vectorized mapping (restart fast path) -------------------------------

    def _ensure_tables(self):
        """Build the per-area mapping table used by :meth:`map_many`.

        Every area kind except stacks and the relocation-mode heap maps
        through one uniform formula ``A + ((addr - base) // d) * s``,
        with integer floor division matching the scalar code exactly
        (code pointers divide by the 4-byte unit size, atom and C-global
        slots by the source word size, same-word-size heap chunks by 1).
        Stacks anchor at the *high* end, so they keep a dedicated form.
        """
        if self._tables is not None:
            return self._tables
        n = len(self._areas)
        bases = np.zeros(n, dtype=np.uint64)
        ends = np.zeros(n, dtype=np.uint64)
        rows = np.zeros(n, dtype=np.uint8)
        A = np.zeros(n, dtype=np.uint64)
        d = np.ones(n, dtype=np.uint64)
        s = np.ones(n, dtype=np.uint64)
        vm = self.vm
        src_wb, dst_wb = self.src_wb, self.dst_wb
        for i, area in enumerate(self._areas):
            bases[i] = area.base
            ends[i] = area.base + area.n_words * src_wb
            kind = area.kind
            if kind == AreaKind.HEAP_CHUNK.value:
                if self.heap_relocation is not None:
                    rows[i] = _ROW_HEAP_RELOC
                else:
                    A[i] = self._heap_chunk_targets[area.base]
            elif kind == "code":
                A[i], d[i], s[i] = vm.code_base, 4, 4
            elif kind == AreaKind.ATOMS.value:
                A[i], d[i], s[i] = vm.mem.atoms.area.base, src_wb, dst_wb
            elif kind == AreaKind.C_GLOBALS.value:
                A[i], d[i], s[i] = vm.mem.cglobals.area.base, src_wb, dst_wb
            elif kind in (AreaKind.STACK.value, AreaKind.THREAD_STACK.value):
                highs = self._stack_highs.get(area.label)
                if highs is None:
                    rows[i] = _ROW_BAD
                else:
                    rows[i] = _ROW_STACK
                    A[i] = highs[1]  # target stack high
            else:  # minor heap (or unknown): an error if ever targeted
                rows[i] = _ROW_BAD
        reloc_keys = reloc_vals = None
        if self.heap_relocation is not None:
            reloc_keys = np.fromiter(
                self.heap_relocation.keys(), dtype=np.uint64,
                count=len(self.heap_relocation),
            )
            reloc_vals = np.fromiter(
                self.heap_relocation.values(), dtype=np.uint64,
                count=len(self.heap_relocation),
            )
            order = np.argsort(reloc_keys)
            reloc_keys = reloc_keys[order]
            reloc_vals = reloc_vals[order]
        self._tables = (bases, ends, rows, A, d, s, reloc_keys, reloc_vals)
        return self._tables

    def map_many(self, addrs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`map`: adjust a ``uint64`` address array.

        Returns ``(mapped, ok)``; where ``ok`` is False the address lay
        in no saved area (the scalar path's ``None``) and ``mapped`` is
        0.  Bit-identical to calling :meth:`map` per element.
        """
        bases, ends, rows, A, d, s, rkeys, rvals = self._ensure_tables()
        mapped = np.zeros(addrs.shape, dtype=np.uint64)
        ok = np.zeros(addrs.shape, dtype=bool)
        if self._code_end is not None:
            ce = addrs == np.uint64(self._code_end)
            if ce.any():
                mapped[ce] = self.vm.code_base + 4 * len(self.vm.code.units)
                ok[ce] = True
        else:
            ce = np.zeros(addrs.shape, dtype=bool)
        idx = np.searchsorted(bases, addrs, side="right").astype(np.int64) - 1
        safe = np.maximum(idx, 0)
        within = (idx >= 0) & (addrs < ends[safe]) & ~ce
        if not within.any():
            return mapped, ok
        r = safe[within]
        a = addrs[within]
        kinds = rows[r]
        res = np.zeros(a.shape, dtype=np.uint64)
        okw = np.ones(a.shape, dtype=bool)
        uni = kinds == _ROW_UNIFORM
        if uni.any():
            ru = r[uni]
            res[uni] = A[ru] + ((a[uni] - bases[ru]) // d[ru]) * s[ru]
        stk = kinds == _ROW_STACK
        if stk.any():
            rs = r[stk]
            below = (ends[rs] - a[stk]) // np.uint64(self.src_wb)
            res[stk] = A[rs] - below * np.uint64(self.dst_wb)
        rel = kinds == _ROW_HEAP_RELOC
        if rel.any() and (rkeys is None or rkeys.size == 0):
            okw[rel] = False
            self._misses += int(rel.sum())
            rel = np.zeros(a.shape, dtype=bool)
        if rel.any():
            ar = a[rel]
            pos = np.searchsorted(rkeys, ar)
            safe_pos = np.minimum(pos, rkeys.size - 1)
            hit = (pos < rkeys.size) & (rkeys[safe_pos] == ar)
            res[rel] = np.where(hit, rvals[safe_pos], np.uint64(0))
            okw[rel] = hit
            self._misses += int(ar.size - hit.sum())
        bad = kinds == _ROW_BAD
        if bad.any():
            offending = self._areas[int(r[bad][0])]
            if offending.kind == AreaKind.MINOR_HEAP.value:
                raise RestartError(
                    "checkpoint contains a pointer into the (empty) young "
                    "generation — corrupt file?"
                )
            raise RestartError(f"no target stack for {offending.label!r}")
        mapped[within] = res
        ok[within] = okw
        return mapped, ok
