"""Pointer adjustment: saved boundary addresses -> new addresses (§3.2.2).

"During checkpointing, we save the memory boundaries of all these
areas.  Then, during restart, for each value, we first examine if it is
a pointer and into which memory area it was pointing.  We verify this
by comparing the pointer value with all the saved boundaries.  Lastly,
we adjust the pointer to the new address by adding the offset to the
beginning of the specified memory area."

The :class:`AddressMapper` implements exactly that, with the index-based
refinements cross-word-size restarts require: atom and C-global slots
are mapped by *index* (their byte offsets scale with the word size),
code addresses by 32-bit unit index, and heap pointers either by chunk
offset (same word size) or through the block relocation table built
while the heap was re-encoded.
"""

from __future__ import annotations

import bisect
from typing import Optional, TYPE_CHECKING

from repro.checkpoint.format import AreaRecord, VMSnapshot
from repro.errors import RestartError
from repro.memory.layout import AreaKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine


class AddressMapper:
    """Maps source-machine addresses to target-machine addresses."""

    def __init__(
        self,
        snap: VMSnapshot,
        vm: "VirtualMachine",
        heap_relocation: Optional[dict[int, int]] = None,
    ) -> None:
        self.vm = vm
        self.src_wb = snap.arch.word_bytes
        self.dst_wb = vm.platform.arch.word_bytes
        #: Block-exact relocation table (word-size-changing restarts).
        self.heap_relocation = heap_relocation
        #: Source areas sorted by base for binary search.
        self._areas: list[AreaRecord] = sorted(
            snap.boundaries, key=lambda a: a.base
        )
        self._bases = [a.base for a in self._areas]
        # Target resolution tables.
        self._heap_chunk_targets: dict[int, int] = {}
        src_chunk_bases = [base for base, _ in snap.heap_chunks]
        dst_chunks = vm.mem.heap.chunks
        if heap_relocation is None:
            if len(src_chunk_bases) != len(dst_chunks):
                raise RestartError(
                    "heap chunk count mismatch between checkpoint and VM"
                )
            for src_base, chunk in zip(src_chunk_bases, dst_chunks):
                self._heap_chunk_targets[src_base] = chunk.base
        # Thread stacks: label -> (source high, target high).
        self._stack_highs: dict[str, tuple[int, int]] = {}
        by_label = {a.label: a for a in snap.boundaries}
        for tid, t in vm.sched.threads.items():
            label = t.stack.label
            src = by_label.get(label)
            if src is not None:
                src_high = src.base + src.n_words * self.src_wb
                self._stack_highs[label] = (src_high, t.stack.stack_high)
        self._misses = 0
        code_rec = next((a for a in snap.boundaries if a.kind == "code"), None)
        #: One-past-the-end code address: a thread that ran off the end
        #: of the program (a finished thread's saved PC) parks here.
        self._code_end = (
            code_rec.base + 4 * code_rec.n_words if code_rec else None
        )

    # -- queries ----------------------------------------------------------------

    def source_area(self, addr: int) -> Optional[AreaRecord]:
        """Boundary-compare: which saved area contained this address?"""
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            area = self._areas[i]
            if addr < area.base + area.n_words * self.src_wb:
                return area
        return None

    def map(self, addr: int) -> Optional[int]:
        """Adjust one pointer; ``None`` if it lies in no saved area."""
        if addr == self._code_end:
            return self.vm.code_base + 4 * len(self.vm.code.units)
        area = self.source_area(addr)
        if area is None:
            return None
        kind = area.kind
        if kind == AreaKind.HEAP_CHUNK.value:
            return self._map_heap(addr, area)
        if kind == "code":
            unit = (addr - area.base) // 4
            return self.vm.code_base + 4 * unit
        if kind == AreaKind.ATOMS.value:
            tag = (addr - area.base) // self.src_wb - 1
            return self.vm.mem.atoms.atom(tag)
        if kind == AreaKind.C_GLOBALS.value:
            slot = (addr - area.base) // self.src_wb
            return self.vm.mem.cglobals.area.base + slot * self.dst_wb
        if kind in (AreaKind.STACK.value, AreaKind.THREAD_STACK.value):
            highs = self._stack_highs.get(area.label)
            if highs is None:
                raise RestartError(f"no target stack for {area.label!r}")
            src_high, dst_high = highs
            slots_below_high = (src_high - addr) // self.src_wb
            return dst_high - slots_below_high * self.dst_wb
        if kind == AreaKind.MINOR_HEAP.value:
            # The writer ran a minor collection: nothing may point here.
            raise RestartError(
                "checkpoint contains a pointer into the (empty) young "
                "generation — corrupt file?"
            )
        raise RestartError(f"cannot map pointer into area kind {kind!r}")

    def _map_heap(self, addr: int, area: AreaRecord) -> Optional[int]:
        if self.heap_relocation is not None:
            target = self.heap_relocation.get(addr)
            if target is None:
                # A pointer held by a dead (unreachable) block whose
                # referent was on the freelist and therefore not rebuilt.
                self._misses += 1
                return None
            return target
        return self._heap_chunk_targets[area.base] + (addr - area.base)

    @property
    def dangling_pointers(self) -> int:
        """Pointers into dropped free blocks (dead data only)."""
        return self._misses
