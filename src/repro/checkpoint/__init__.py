"""Heterogeneous checkpoint/restart — the paper's primary contribution.

* :mod:`repro.checkpoint.format` — the checkpoint file format: VM data
  words in the *saving* machine's native representation (endianness and
  word size), framing metadata in fixed little-endian, an architecture
  marker word for endianness detection, and an end signature + CRC for
  the atomic-commit check.
* :mod:`repro.checkpoint.writer` — the 14-step checkpoint mechanism of
  §4.1, with fork-style background writing on POSIX personalities and
  blocking writes on the NT personality.
* :mod:`repro.checkpoint.reader` — the restart mechanism of §4.2:
  endianness/word-size detection, lazy conversion, boundary-based
  pointer adjustment, GC-guided heap fixing with the collector disabled.
* :mod:`repro.checkpoint.convert` / :mod:`relocate` — value conversion
  and address mapping machinery.
* :mod:`repro.checkpoint.homogeneous` — the core-dump-style baseline
  the paper compares against.
"""

from repro.checkpoint.commit import (
    COMMIT_POINTS,
    CommitHooks,
    atomic_commit,
    generation_chain,
    recover_commit,
)
from repro.checkpoint.format import (
    CheckpointHeader,
    AreaRecord,
    SectionEntry,
    ThreadRecord,
    RegisterRecord,
    VMSnapshot,
    read_checkpoint,
    read_section_table,
    CHECKPOINT_MAGIC,
    CHECKPOINT_MAGIC_V1,
    CHECKPOINT_MAGIC_V2,
    CHECKPOINT_MAGIC_V3,
)
from repro.checkpoint.writer import CheckpointWriter, CheckpointStats, build_snapshot
from repro.checkpoint.reader import (
    RestartStats,
    restart_vm,
    restart_vm_with_fallback,
)
from repro.checkpoint.fsck import fsck_checkpoint
from repro.checkpoint.homogeneous import HomogeneousCheckpointer

__all__ = [
    "CheckpointHeader",
    "AreaRecord",
    "SectionEntry",
    "ThreadRecord",
    "RegisterRecord",
    "VMSnapshot",
    "read_checkpoint",
    "read_section_table",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_MAGIC_V1",
    "CHECKPOINT_MAGIC_V2",
    "CHECKPOINT_MAGIC_V3",
    "COMMIT_POINTS",
    "CommitHooks",
    "atomic_commit",
    "generation_chain",
    "recover_commit",
    "CheckpointWriter",
    "CheckpointStats",
    "build_snapshot",
    "restart_vm",
    "restart_vm_with_fallback",
    "fsck_checkpoint",
    "RestartStats",
    "HomogeneousCheckpointer",
]
