"""Checkpoint inspection: deep structural validation and statistics.

A release-grade C/R system needs a way to answer "is this checkpoint
file sane, and what is in it?" without restoring it.  The validator
re-runs the restart logic's *read-only* half: it walks every heap chunk
block by block using the saved architecture's header layout, classifies
every field against the saved boundary addresses, and reports
malformations — exactly the checks a restart would trip over, minus the
rebuild.

Used by ``python -m repro info --deep`` and by tests as a
property-style oracle over generated checkpoints.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.checkpoint.format import (
    VMSnapshot,
    annotate_restore_error,
)
from repro.checkpoint.schema import FormatProfile, SnapshotSource, all_codecs
from repro.errors import CheckpointFormatError
from repro.metrics import INTEGRITY
from repro.memory.blocks import (
    CLOSURE_TAG,
    Color,
    DOUBLE_TAG,
    HeaderCodec,
    NO_SCAN_TAG,
    STRING_TAG,
)
from repro.memory.layout import AreaKind
from repro.memory.strings import StringCodec


@dataclass
class InspectionReport:
    """Findings of one checkpoint inspection."""

    platform_name: str = ""
    format_version: int = 1
    #: Whether the file carries the v2 block-extent index.
    has_block_index: bool = False
    word_bytes: int = 0
    endianness: str = ""
    multithreaded: bool = False
    thread_count: int = 0
    heap_chunks: int = 0
    heap_words: int = 0
    live_blocks: int = 0
    free_blocks: int = 0
    live_words: int = 0
    free_words: int = 0
    #: Blocks by class: "structured", "closure", "string", "double", ...
    blocks_by_class: Counter = field(default_factory=Counter)
    #: Pointers by destination area kind.
    pointers_by_area: Counter = field(default_factory=Counter)
    stack_words: int = 0
    channels: int = 0
    #: v3 section table (name, offset, length, crc32) as verified at
    #: parse time; empty for v1/v2 files.
    sections: list = field(default_factory=list)
    #: Human-readable problems; empty means the checkpoint validates.
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        index_note = (
            "block-extent index present"
            if self.has_block_index
            else "no block index"
        )
        if self.sections:
            index_note += f", integrity trailer ({len(self.sections)} sections verified)"
        lines = [
            f"format     : v{self.format_version}, {index_note}",
            f"platform   : {self.platform_name} "
            f"({self.word_bytes * 8}-bit {self.endianness}-endian)",
            f"application: {'multi' if self.multithreaded else 'single'}"
            f"-threaded, {self.thread_count} thread(s), "
            f"{self.stack_words} stack words, {self.channels} channel(s)",
            f"heap       : {self.heap_chunks} chunk(s), {self.heap_words} words "
            f"({self.live_words} live in {self.live_blocks} blocks, "
            f"{self.free_words} free in {self.free_blocks} blocks)",
        ]
        if self.blocks_by_class:
            parts = ", ".join(
                f"{n} {k}" for k, n in self.blocks_by_class.most_common()
            )
            lines.append(f"blocks     : {parts}")
        if self.pointers_by_area:
            parts = ", ".join(
                f"{n} -> {k}" for k, n in self.pointers_by_area.most_common()
            )
            lines.append(f"pointers   : {parts}")
        if self.problems:
            lines.append(f"PROBLEMS ({len(self.problems)}):")
            lines.extend(f"  - {p}" for p in self.problems)
        else:
            lines.append("validation : OK")
        return "\n".join(lines)


def _classify_tag(tag: int) -> str:
    if tag == STRING_TAG:
        return "string"
    if tag == DOUBLE_TAG:
        return "double"
    if tag == CLOSURE_TAG:
        return "closure"
    if tag >= NO_SCAN_TAG:
        return "abstract"
    return "structured"


def inspect_snapshot(snap: VMSnapshot) -> InspectionReport:
    """Validate a parsed checkpoint; never raises on content problems."""
    report = InspectionReport(
        platform_name=snap.header.platform_name,
        format_version=snap.header.format_version,
        has_block_index=snap.chunk_index is not None,
        word_bytes=snap.header.word_bytes,
        endianness=snap.header.endianness.value,
        multithreaded=snap.header.multithreaded,
        thread_count=len(snap.threads),
        heap_chunks=len(snap.heap_chunks),
        channels=len(snap.channels),
        sections=[
            {
                "name": s.name,
                "offset": s.offset,
                "length": s.length,
                "crc32": f"{s.crc32:08x}",
            }
            for s in (snap.sections or [])
        ],
    )
    arch = snap.arch
    headers = HeaderCodec(arch)
    strings = StringCodec(arch)
    wb = arch.word_bytes

    areas = sorted(snap.boundaries, key=lambda a: a.base)

    def area_of(addr: int):
        for a in areas:
            if a.base <= addr < a.base + a.n_words * wb:
                return a
        return None

    def check_pointer(w: int, where: str) -> None:
        a = area_of(w)
        if a is None:
            report.problems.append(
                f"{where}: pointer {w:#x} lies in no saved area"
            )
        else:
            report.pointers_by_area[a.kind] += 1

    # --- heap walk -------------------------------------------------------
    code_end = None
    for a in areas:
        if a.kind == "code":
            code_end = a.base + a.n_words * 4
    for ci, (base, words) in enumerate(snap.heap_chunks):
        report.heap_words += len(words)
        walk_positions: list[int] = []
        i = 0
        n = len(words)
        while i < n:
            walk_positions.append(i)
            hd = words[i]
            size = headers.size(hd)
            tag = headers.tag(hd)
            color = headers.color(hd)
            if i + 1 + size > n:
                report.problems.append(
                    f"chunk {base:#x}: block at word {i} (size {size}) "
                    f"overruns the chunk"
                )
                break
            if color is Color.BLUE:
                report.free_blocks += 1
                report.free_words += size + 1
                if size >= 1:
                    link = words[i + 1]
                    if link and area_of(link) is None:
                        report.problems.append(
                            f"chunk {base:#x}: freelist link {link:#x} "
                            f"points nowhere"
                        )
            else:
                report.live_blocks += 1
                report.live_words += size + 1
                cls = _classify_tag(tag)
                report.blocks_by_class[cls] += 1
                payload = words[i + 1 : i + 1 + size]
                if cls == "string":
                    try:
                        strings.byte_length(payload)
                    except ValueError:
                        report.problems.append(
                            f"chunk {base:#x}: corrupt string padding at "
                            f"word {i}"
                        )
                elif cls == "double" and size != 8 // wb:
                    report.problems.append(
                        f"chunk {base:#x}: double block of {size} words"
                    )
                elif cls in ("structured", "closure"):
                    for j, w in enumerate(payload):
                        if w & 1:
                            continue
                        check_pointer(
                            w, f"chunk {base:#x} block@{i} field {j}"
                        )
            i += 1 + size
        if snap.chunk_index is not None:
            # The v2 index must agree with the discovery walk exactly —
            # a vectorized restart trusts it without re-walking.
            indexed = [int(p) for p in snap.chunk_index[ci][0]]
            if indexed != walk_positions:
                report.problems.append(
                    f"chunk {base:#x}: block-extent index lists "
                    f"{len(indexed)} block(s) but the discovery walk "
                    f"found {len(walk_positions)}"
                    if len(indexed) != len(walk_positions)
                    else f"chunk {base:#x}: block-extent index disagrees "
                    f"with the discovery walk"
                )

    # --- threads -----------------------------------------------------------
    for t in snap.threads:
        report.stack_words += len(t.stack_words)
        pc = t.regs.pc
        a = area_of(pc)
        ok_pc = (a is not None and a.kind == "code") or pc == code_end
        if not ok_pc:
            report.problems.append(
                f"thread {t.tid}: PC {pc:#x} is not a code address"
            )
        for k, w in enumerate(t.stack_words):
            if w & 1:
                continue
            if w == 0:
                continue
            if area_of(w) is None:
                report.problems.append(
                    f"thread {t.tid}: stack word {k} = {w:#x} points nowhere"
                )
        if t.regs.trapsp:
            a = area_of(t.regs.trapsp)
            if a is None or a.kind not in (
                AreaKind.STACK.value, AreaKind.THREAD_STACK.value
            ):
                report.problems.append(
                    f"thread {t.tid}: trap pointer {t.regs.trapsp:#x} is "
                    f"not a stack address"
                )

    # --- globals -------------------------------------------------------------
    if snap.global_data and area_of(snap.global_data) is None:
        report.problems.append("global_data pointer lies in no saved area")
    if snap.freelist_head and area_of(snap.freelist_head) is None:
        report.problems.append("freelist head lies in no saved area")
    return report


def inspect_checkpoint(path: str) -> InspectionReport:
    """Read, verify (signature + CRC) and deep-validate a checkpoint.

    A v4 delta head is reconstructed through its chain first — the
    structural walk only makes sense over a complete heap image.
    """
    from repro.checkpoint.reader import load_snapshot_chain

    return inspect_snapshot(load_snapshot_chain(path))


def describe_snapshot(snap: VMSnapshot) -> dict:
    """A machine-readable description of a parsed checkpoint.

    The JSON backbone of ``repro info --json``; the checkpoint store's
    deep integrity audit consumes the same structure to decide whether a
    stored payload is still a restorable checkpoint.
    """
    h = snap.header
    heap_words = sum(len(w) for _, w in snap.heap_chunks)
    delta = None
    if snap.delta is not None:
        delta = {
            "parent_sha256": snap.delta.parent_sha256.hex(),
            "chain_depth": snap.delta.chain_depth,
            "dirty_words": snap.delta.dirty_words,
            "total_words": snap.delta.total_words,
            "dirty_ratio": snap.delta.dirty_ratio,
        }
    profile = FormatProfile.for_version(h.format_version)
    codecs = all_codecs()
    # v1/v2 files carry no section table at all: report null, not an
    # empty list — "no sections" and "none recorded" are different facts.
    sections = None
    section_bytes = None
    if snap.sections is not None:
        sections = [
            {
                "name": s.name,
                "offset": s.offset,
                "length": s.length,
                "crc32": f"{s.crc32:08x}",
                "flags": (
                    codecs[s.name].flags(profile) if s.name in codecs else []
                ),
            }
            for s in snap.sections
        ]
        section_bytes = {s.name: s.length for s in snap.sections}
    return {
        "format_version": h.format_version,
        "kind": "full" if snap.delta is None else "delta",
        "delta": delta,
        "has_block_index": snap.chunk_index is not None,
        "integrity_verified": snap.sections is not None,
        "sections": sections,
        "section_bytes": section_bytes,
        "platform": h.platform_name,
        "os": h.os_name,
        "word_bits": h.word_bytes * 8,
        "endianness": h.endianness.value,
        "multithreaded": h.multithreaded,
        "current_tid": h.current_tid,
        "code_digest": h.code_digest.hex(),
        "code_len": h.code_len,
        "heap": {
            "chunks": len(snap.heap_chunks),
            "words": int(heap_words),
            "allocated_words": snap.allocated_words,
        },
        "threads": [
            {
                "tid": t.tid,
                "state": t.state,
                "stack_words": len(t.stack_words),
            }
            for t in snap.threads
        ],
        "channels": len(snap.channels),
    }


def describe_checkpoint(path: str, deep: bool = False) -> dict:
    """Read a checkpoint file and describe it as JSON-able data.

    The shallow path opens the file through a deferred
    :class:`~repro.checkpoint.schema.SnapshotSource`: section geometry
    comes from the handles, heap payloads are sized (``len``) but never
    parsed, and ``desc["lazy"]`` records the section-resolution state
    as a lazy consumer would first see it — sections resolved vs.
    deferred, bytes verified vs. deferred.  Verification still
    completes before returning (``finish_verification``), so a corrupt
    file fails ``repro info`` exactly as it always did.

    With ``deep``, the full structural validation runs too and its
    findings land under ``"problems"`` / ``"ok"``.
    """
    try:
        src = SnapshotSource.open(path, defer=True)
    except CheckpointFormatError as e:
        INTEGRITY.integrity_failures += 1
        raise annotate_restore_error(e, path) from e
    try:
        lazy_report = src.stats()
        try:
            if deep:
                snap = src.resolve_all()
            else:
                src.finish_verification()
                snap = src.snapshot
        except CheckpointFormatError as e:
            INTEGRITY.integrity_failures += 1
            raise annotate_restore_error(e, path) from e
        desc = describe_snapshot(snap)
    finally:
        src.close()
    desc["path"] = path
    desc["lazy"] = lazy_report
    if deep:
        target = snap
        if snap.delta is not None:
            from repro.checkpoint.reader import load_snapshot_chain

            target = load_snapshot_chain(path)
        report = inspect_snapshot(target)
        desc["problems"] = list(report.problems)
        desc["ok"] = report.ok
        desc["blocks_by_class"] = dict(report.blocks_by_class)
        desc["pointers_by_area"] = dict(report.pointers_by_area)
    return desc
