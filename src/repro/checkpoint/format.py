"""The checkpoint file format.

Layout (sections in the order of the paper's §4.1 steps 5-13):

1.  magic + format version
2.  architecture marker: one byte giving the word size in bytes, then
    the *word value 1 in the saving machine's native representation* —
    the restarting machine compares it against its own encoding of 1 to
    detect an endianness mismatch (paper step 5)
3.  platform/OS names, application type (single/multi-threaded)
4.  code identity: digest + length (restart must resume the same program)
5.  boundary addresses of every memory area (paper step 6)
6.  VM globals: freelist head, global_data pointer, allocated words
    (paper step 9)
7.  heap chunks, dumped raw in native representation (paper step 8)
7b. block-extent index (format v2 only, optional): per chunk, the
    delta-coded word positions of every block header plus a one-byte
    class per block, so restart can vectorize per block class without
    re-discovering headers word-by-word
8.  atom table dump (paper step 9)
9.  C-global area dump + registered root indices
10. per-thread records: registers (paper step 7), scheduling state and
    the used stack region (paper steps 10-11)
11. channel records (paper step 12)
11b. integrity trailer (format v3 only): a section table naming every
    body section with its byte extent and CRC32, plus a SHA-256 of the
    whole body — so a reader can verify section-at-a-time, name the
    exact damaged section on a mismatch, and ``repro fsck`` can repair
    just the damaged byte range from a store replica
12. end signature + CRC32 of everything before it (paper step 13)

Framing integers (counts, lengths) are fixed little-endian; *VM data
words* (heap, stacks, registers, boundaries) are in the native
representation of the checkpointing machine, exactly as the paper
prescribes — conversion happens only at restart, and only if needed.
"""

from __future__ import annotations

import hashlib
import io
import struct
import zlib
from dataclasses import dataclass, field, replace
from typing import BinaryIO, Optional

import numpy as np

from repro.arch.architecture import Architecture, Endianness
from repro.channels.manager import ChannelRecord
from repro.checkpoint.schema import FormatProfile
from repro.checkpoint.schema.source import ChunkSlice, SnapshotSource
from repro.errors import CheckpointFormatError, CheckpointIntegrityError
from repro.metrics import INTEGRITY

CHECKPOINT_MAGIC_V1 = b"HCKP\x01\x00"
CHECKPOINT_MAGIC_V2 = b"HCKP\x02\x00"
CHECKPOINT_MAGIC_V3 = b"HCKP\x03\x00"
#: Format v4 marks *delta* checkpoints only: the heap section holds
#: dirty regions relative to a parent generation (bound by the parent's
#: body SHA-256 in the header) instead of full chunk dumps.  Full
#: checkpoints keep the v3 magic, so v4 never appears at the base of a
#: chain.
CHECKPOINT_MAGIC_V4 = b"HCKP\x04\x00"
#: The magic current writers emit (format v3: per-section CRCs + trailer).
CHECKPOINT_MAGIC = CHECKPOINT_MAGIC_V3
CHECKPOINT_END = b"HCKPEND!"
#: Leads the v3 integrity trailer (section table + whole-body SHA-256);
#: v4 files reuse it unchanged.
TRAILER_MAGIC = b"HCKPTBL3"

#: Block classes recorded in the v2 block-extent index.  They partition
#: blocks by how restart must treat the payload: FREE blocks carry a
#: freelist link in field 0; SCAN payloads are values (pointers or
#: immediates); STRING/DOUBLE payloads are byte-oriented and repack by
#: their own rules on an endianness or word-size change; OPAQUE payloads
#: (NO_SCAN custom data) are raw machine words.
CLASS_FREE = 0
CLASS_SCAN = 1
CLASS_STRING = 2
CLASS_DOUBLE = 3
CLASS_OPAQUE = 4


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SectionEntry:
    """One row of the v3 section table: a named body byte range + CRC."""

    name: str
    offset: int
    length: int
    crc32: int

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class DeltaChunkRecord:
    """Dirty regions of one heap chunk in a v4 delta.

    Every chunk mapped at capture time gets a record — even with zero
    dirty regions — because the record also carries the chunk geometry a
    reconstruction needs (new chunks materialize from it, vanished
    chunks are dropped because no record mentions them).
    """

    base: int
    n_words: int
    #: ``(start_word, words)`` runs, ascending and non-overlapping; the
    #: vectorized paths store numpy arrays in the ``words`` slot.
    regions: list


@dataclass(frozen=True)
class DeltaInfo:
    """The v4 header extension + delta-encoded heap payload."""

    #: Body SHA-256 of the parent generation this delta applies on top
    #: of — the same digest the parent's v3/v4 trailer records.
    parent_sha256: bytes
    #: 1 for a delta directly on a full checkpoint, +1 per further hop.
    chain_depth: int
    #: Dirty heap words serialized in this delta.
    dirty_words: int
    #: Total mapped heap words at capture (for dirty-ratio reporting).
    total_words: int
    #: Whether the atom-table / C-global sections are present (omitted
    #: when untouched since the parent; reconstruction walks back).
    has_atoms: bool = True
    has_cglobals: bool = True
    chunks: list = field(default_factory=list)

    @property
    def dirty_ratio(self) -> float:
        return self.dirty_words / self.total_words if self.total_words else 0.0


@dataclass(frozen=True)
class AreaRecord:
    """Boundary addresses of one memory area on the saving machine."""

    kind: str       # AreaKind value string
    label: str
    base: int       # byte address (native word in the file)
    n_words: int


@dataclass(frozen=True)
class RegisterRecord:
    """One thread's abstract registers (paper §3.1.5)."""

    pc: int          # code address value
    sp: int          # stack pointer byte address
    accu: int
    env: int
    extra_args: int
    trapsp: int = 0  # innermost trap-frame stack address, 0 = none


@dataclass(frozen=True)
class ThreadRecord:
    """Scheduling state + registers + stack of one VM thread."""

    tid: int
    state: str        # ThreadState value
    block_kind: str   # BlockKind value
    blocked_on: int   # value or tid (see block_kind)
    pending_mutex: int
    result: int
    regs: RegisterRecord
    stack_base: int
    stack_high: int
    capacity_words: int
    stack_words: list[int]  # used region, top of stack first


@dataclass(frozen=True)
class CheckpointHeader:
    """Everything the restart logic needs before touching VM data."""

    word_bytes: int
    endianness: Endianness
    platform_name: str
    os_name: str
    multithreaded: bool
    current_tid: int
    code_digest: bytes
    code_len: int
    format_version: int = 3

    @property
    def arch(self) -> Architecture:
        """The saving machine's architecture."""
        return Architecture(self.word_bytes * 8, self.endianness, "saved")


@dataclass
class VMSnapshot:
    """A complete, self-contained copy of checkpointable VM state.

    Built at the safe point; the writer serializes it (possibly on a
    background thread, playing the role of the forked child process).
    """

    header: CheckpointHeader
    boundaries: list[AreaRecord]
    freelist_head: int
    global_data: int
    allocated_words: int
    heap_chunks: list[tuple[int, list[int]]]  # (base, words); the
    # vectorized paths store numpy arrays in the ``words`` slot instead
    atom_words: list[int]
    cglobal_words: list[int]
    cglobal_roots: list[int]
    threads: list[ThreadRecord]
    channels: list[ChannelRecord]
    #: Format-v2 block-extent index: one ``(positions, classes)`` pair
    #: per heap chunk (uint32 header word-indices, uint8 CLASS_* codes),
    #: or None when the file carries no index (v1, or scalar writer).
    chunk_index: Optional[list[tuple[np.ndarray, np.ndarray]]] = None
    #: The verified v3 section table (None for v1/v2 files).
    sections: Optional[list[SectionEntry]] = None
    #: Delta payload + parent binding (format v4 only; None for fulls).
    delta: Optional[DeltaInfo] = None
    #: SHA-256 of the serialized body — set by the serializers and by
    #: the reader for v3+ files; it is the identity a child delta's
    #: ``parent_sha256`` binds to.
    body_sha256: Optional[bytes] = None

    @property
    def arch(self) -> Architecture:
        return self.header.arch


# ---------------------------------------------------------------------------
# Low-level framing
# ---------------------------------------------------------------------------


class SectionWriter:
    """Little-endian framing plus native-representation word dumps."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._dtype = np.dtype(arch.numpy_dtype)
        self.buf = io.BytesIO()
        #: ``(name, start_offset)`` marks; each section runs to the next
        #: mark (the last to the end of the body).
        self.section_marks: list[tuple[str, int]] = []

    def begin_section(self, name: str) -> None:
        """Mark the start of a named section at the current offset."""
        self.section_marks.append((name, self.buf.tell()))

    def section_extents(self, body_len: int) -> list[tuple[str, int, int]]:
        """``(name, offset, length)`` per section, covering the body."""
        out = []
        for i, (name, start) in enumerate(self.section_marks):
            end = (
                self.section_marks[i + 1][1]
                if i + 1 < len(self.section_marks)
                else body_len
            )
            out.append((name, start, end - start))
        return out

    def u8(self, v: int) -> None:
        self.buf.write(struct.pack("<B", v))

    def u32(self, v: int) -> None:
        self.buf.write(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self.buf.write(struct.pack("<Q", v))

    def i64(self, v: int) -> None:
        self.buf.write(struct.pack("<q", v))

    def raw(self, data: bytes) -> None:
        self.buf.write(data)

    def bytes_lp(self, data: bytes) -> None:
        self.u32(len(data))
        self.buf.write(data)

    def str_lp(self, s: str) -> None:
        self.bytes_lp(s.encode())

    def word(self, w: int) -> None:
        """One VM word in native representation."""
        self.buf.write(self.arch.word_to_bytes(w))

    def words(self, ws) -> None:
        """A word array in native representation (vectorized).

        Accepts a list of ints or a numpy array; an array already in the
        architecture's native dtype is written without any copy/convert.
        """
        self.u64(len(ws))
        if isinstance(ws, np.ndarray):
            if ws.dtype == self._dtype:
                # Buffer protocol: no intermediate bytes copy.
                self.buf.write(
                    ws.data if ws.flags.c_contiguous else ws.tobytes()
                )
                return
            arr = ws.astype(np.uint64) & np.uint64(self.arch.word_mask)
            self.buf.write(arr.astype(self._dtype).data)
            return
        # List input: the scalar reference encoding, kept byte-for-byte
        # and copy-for-copy as-is so ``--no-vectorize`` measures the
        # unoptimized baseline the vectorized path is compared against.
        arr = np.asarray(ws, dtype=np.uint64) & np.uint64(self.arch.word_mask)
        self.buf.write(arr.astype(self._dtype).tobytes())

    def getvalue(self) -> bytes:
        return self.buf.getvalue()


class SectionReader:
    """Mirror of :class:`SectionWriter`."""

    def __init__(self, data: bytes, arch: Optional[Architecture] = None) -> None:
        self.data = data
        self.off = 0
        #: Absolute byte position of ``data[0]`` in the file, so error
        #: reports from a single-section reader (``SnapshotSource``)
        #: carry file offsets; 0 for whole-body readers, where reader
        #: offsets and file offsets already coincide.
        self.base = 0
        self.arch = arch
        self._dtype = np.dtype(arch.numpy_dtype) if arch else None
        #: The section the parser is currently inside, for error reports.
        self.section = "header"

    def begin(self, name: str) -> None:
        self.section = name

    def set_arch(self, arch: Architecture) -> None:
        self.arch = arch
        self._dtype = np.dtype(arch.numpy_dtype)

    def _take(self, n: int) -> bytes:
        if self.off + n > len(self.data):
            raise CheckpointFormatError(
                f"truncated checkpoint file: section '{self.section}' "
                f"needs {n} byte(s) at offset {self.base + self.off} but "
                f"only {len(self.data) - self.off} remain",
                section=self.section,
                offset=self.base + self.off,
            )
        out = self.data[self.off : self.off + n]
        self.off += n
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def bytes_lp(self) -> bytes:
        return self._take(self.u32())

    def str_lp(self) -> str:
        return self.bytes_lp().decode()

    def word(self) -> int:
        return self.arch.word_from_bytes(self._take(self.arch.word_bytes))

    def words(self) -> list[int]:
        return self.words_array().tolist()

    def words_array(self) -> np.ndarray:
        """A word array decoded to canonical ``uint64`` (no Python ints)."""
        n = self.u64()
        raw = self._take(n * self.arch.word_bytes)
        return np.frombuffer(raw, dtype=self._dtype).astype(np.uint64)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _encode_integrity_trailer(view, extents) -> tuple[bytes, bytes]:
    """The v3 integrity trailer for a complete body + the body SHA-256.

    ``view`` may be a ``bytes`` or ``memoryview`` of the body;
    ``extents`` is ``SectionWriter.section_extents`` output.  Layout:
    trailer magic, u32 section count, per section (lp-str name, u64
    offset, u64 length, u32 CRC32), 32 raw SHA-256 bytes of the body,
    and finally a u32 byte length of everything from the trailer magic
    through the SHA — so a reader can locate the trailer from the end
    of the file without parsing the body first.
    """
    parts = [TRAILER_MAGIC, struct.pack("<I", len(extents))]
    for name, off, length in extents:
        raw = name.encode()
        parts.append(struct.pack("<I", len(raw)) + raw)
        parts.append(
            struct.pack(
                "<QQI", off, length,
                zlib.crc32(view[off : off + length]) & 0xFFFFFFFF,
            )
        )
    sha = hashlib.sha256(view).digest()
    parts.append(sha)
    blob = b"".join(parts)
    return blob + struct.pack("<I", len(blob)), sha


def serialize_snapshot(snap: VMSnapshot) -> bytes:
    """Serialize a snapshot into the on-disk checkpoint format.

    This is the scalar reference tail: materialize the body, checksum
    it, concatenate the trailer.  Both copies are deliberate — they are
    part of the unoptimized baseline ``--no-vectorize`` measures.
    """
    profile = FormatProfile.for_snapshot(snap)
    w = profile.write_body(snap)
    body = w.getvalue()
    if profile.integrity_trailer:
        trailer, sha = _encode_integrity_trailer(
            body, w.section_extents(len(body))
        )
        body += trailer
        snap.body_sha256 = sha
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return body + CHECKPOINT_END + struct.pack("<I", crc)


def serialize_snapshot_writer(snap: VMSnapshot) -> "SectionWriter":
    """Serialize a snapshot; returns the filled :class:`SectionWriter`.

    The vectorized tail: the CRCs run over the live buffer view and the
    trailer is appended in place, so callers streaming straight to a
    file (``w.buf.getbuffer()``) never copy the multi-megabyte body.
    """
    profile = FormatProfile.for_snapshot(snap)
    w = profile.write_body(snap)
    if profile.integrity_trailer:
        body_len = w.buf.tell()
        with w.buf.getbuffer() as view:
            trailer, sha = _encode_integrity_trailer(
                view, w.section_extents(body_len)
            )
        w.raw(trailer)
        snap.body_sha256 = sha
    with w.buf.getbuffer() as view:
        crc = zlib.crc32(view) & 0xFFFFFFFF
    w.raw(CHECKPOINT_END + struct.pack("<I", crc))
    return w


def detect_format_version(path: str) -> Optional[int]:
    """The format version a file's magic claims, or None if unreadable."""
    try:
        with open(path, "rb") as f:
            magic = f.read(FormatProfile.magic_len())
    except OSError:
        return None
    profile = FormatProfile.for_magic(magic, None)
    return profile.version if profile is not None else None


def annotate_restore_error(exc: Exception, path: str) -> Exception:
    """Attach file path, format version, and section to a restore error.

    Re-raising a failed restore without saying *which* file (a periodic
    checkpoint setup juggles several), *what* format it carries, or
    *where* in it the failure lies makes corruption reports useless;
    every error leaving this module or the restart path is annotated
    exactly once (marked via the ``path`` attribute).  The structured
    context also lands on the :class:`~repro.errors.CheckpointError`
    ``path``/``format_version``/``section`` attributes.
    """
    if getattr(exc, "path", None) is not None:
        return exc
    version = detect_format_version(path)
    vnote = (
        f"format v{version}"
        if version is not None
        else "format version undetectable"
    )
    section = getattr(exc, "section", None)
    snote = f", section '{section}'" if section else ""
    err = type(exc)(f"{path}: {exc} ({vnote}{snote})")
    for attr in ("section", "offset", "length", "expected", "actual"):
        if hasattr(exc, attr):
            setattr(err, attr, getattr(exc, attr))
    err.path = path  # type: ignore[attr-defined]
    err.format_version = version  # type: ignore[attr-defined]
    return err


def read_checkpoint(path: str, raw_arrays: bool = False) -> VMSnapshot:
    """Read and validate a checkpoint file; detect its architecture.

    A v2 reader accepts v1 files (they simply carry no block-extent
    index).  With ``raw_arrays`` the bulk word sections (heap chunks and
    thread stacks) are returned as numpy ``uint64`` arrays instead of
    Python lists, for the vectorized restart path.

    Any :class:`~repro.errors.CheckpointFormatError` raised here carries
    the file path and the format version its magic claims.
    """
    try:
        src = SnapshotSource.open(path, raw_arrays=raw_arrays)
        return src.resolve_all()
    except CheckpointFormatError as e:
        INTEGRITY.integrity_failures += 1
        raise annotate_restore_error(e, path) from e


def _parse_checkpoint(data: bytes, raw_arrays: bool = False) -> VMSnapshot:
    if len(data) < len(CHECKPOINT_MAGIC) + len(CHECKPOINT_END) + 4:
        raise CheckpointFormatError(
            f"checkpoint file too small ({len(data)} byte(s)): truncated "
            f"in section 'header'",
            section="header",
            offset=len(data),
        )
    payload, end = data[:-12], data[-12:]
    if end[:8] != CHECKPOINT_END:
        _raise_truncation(data)
    (crc,) = struct.unpack("<I", end[8:])
    profile = FormatProfile.for_magic(data[: FormatProfile.magic_len()], None)
    sections: Optional[list[SectionEntry]] = None
    body_sha: Optional[bytes] = None
    if profile is not None and profile.integrity_trailer:
        body, sections, body_sha = _verify_v3_payload(payload, crc)
    else:
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise CheckpointIntegrityError(
                "checkpoint CRC mismatch (corrupt file)",
                section="file",
                offset=0,
                length=len(payload),
                expected=crc,
                actual=zlib.crc32(payload) & 0xFFFFFFFF,
            )
        body = payload
    snap = _parse_body(SectionReader(body), raw_arrays)
    snap.sections = sections
    snap.body_sha256 = body_sha
    return snap


def _raise_truncation(data: bytes) -> None:
    """Diagnose a file with no end signature: name where the data ends.

    A tolerant body parse locates the section and byte offset at which
    the data runs out, so a torn write is reported as *where* it tore
    instead of a bare "not committed".
    """
    section, offset = _locate_parse_end(data)
    raise CheckpointFormatError(
        f"missing end signature: the checkpoint was not committed or was "
        f"truncated (data ends in section '{section}' at byte offset "
        f"{offset})",
        section=section,
        offset=offset,
    )


def _locate_parse_end(data: bytes) -> tuple[str, int]:
    r = SectionReader(data)
    try:
        _parse_body(r, raw_arrays=False)
    except CheckpointFormatError as e:
        return e.section or r.section, e.offset if e.offset is not None else r.off
    except Exception:  # pragma: no cover - defensive; _parse_body wraps
        return r.section, r.off
    # The whole body parsed: the cut lies in the trailer region.
    return "trailer", r.off


def _verify_v3_payload(
    payload: bytes, end_crc: int
) -> tuple[bytes, list[SectionEntry], bytes]:
    """Locate and check the v3 integrity trailer; verify the body.

    Verification order: per-section CRC32s first (cheap, and a mismatch
    names the exact damaged section for fsck), then the whole-body
    SHA-256, then the end-of-file CRC that also covers the trailer
    bytes themselves.
    """
    min_trailer = len(TRAILER_MAGIC) + 4 + 32
    if len(payload) < min_trailer + 4:
        raise CheckpointIntegrityError(
            "v3 integrity trailer missing (file too small)",
            section="trailer",
            offset=len(payload),
        )
    (tlen,) = struct.unpack("<I", payload[-4:])
    tstart = len(payload) - 4 - tlen
    if (
        tlen < min_trailer
        or tstart < len(CHECKPOINT_MAGIC)
        or payload[tstart : tstart + len(TRAILER_MAGIC)] != TRAILER_MAGIC
    ):
        raise CheckpointIntegrityError(
            "v3 integrity trailer is missing or corrupt",
            section="trailer",
            offset=max(tstart, 0),
            length=min(tlen + 4, len(payload)),
        )
    body = payload[:tstart]
    tr = SectionReader(payload[tstart:-4])
    tr.begin("trailer")
    try:
        tr._take(len(TRAILER_MAGIC))
        n = tr.u32()
        if n > 256:
            raise CheckpointFormatError(
                f"implausible section count {n}", section="trailer"
            )
        entries = []
        for _ in range(n):
            name = tr.str_lp()
            off, length, crc32v = struct.unpack("<QQI", tr._take(20))
            entries.append(SectionEntry(name, off, length, crc32v))
        sha = tr._take(32)
    except CheckpointFormatError as e:
        raise CheckpointIntegrityError(
            f"v3 section table unreadable: {e}",
            section="trailer",
            offset=tstart,
            length=tlen + 4,
        ) from e
    # The table must tile the body exactly — gaps or overlaps would let
    # corruption hide between sections.
    pos = 0
    for ent in entries:
        if ent.offset != pos or ent.end > len(body):
            raise CheckpointIntegrityError(
                f"v3 section table does not tile the body (section "
                f"'{ent.name}' claims bytes {ent.offset}..{ent.end})",
                section="trailer",
                offset=tstart,
                length=tlen + 4,
            )
        pos = ent.end
    if pos != len(body):
        raise CheckpointIntegrityError(
            f"v3 section table covers {pos} of {len(body)} body byte(s)",
            section="trailer",
            offset=tstart,
            length=tlen + 4,
        )
    for ent in entries:
        actual = zlib.crc32(payload[ent.offset : ent.end]) & 0xFFFFFFFF
        if actual != ent.crc32:
            raise CheckpointIntegrityError(
                f"section '{ent.name}' CRC mismatch at bytes "
                f"{ent.offset}..{ent.end} (expected {ent.crc32:#010x}, "
                f"got {actual:#010x})",
                section=ent.name,
                offset=ent.offset,
                length=ent.length,
                expected=ent.crc32,
                actual=actual,
            )
    actual_sha = hashlib.sha256(body).digest()
    if actual_sha != sha:
        raise CheckpointIntegrityError(
            f"whole-file SHA-256 mismatch (expected {sha.hex()[:16]}..., "
            f"got {actual_sha.hex()[:16]}...)",
            section="file",
            offset=0,
            length=len(body),
            expected=sha.hex(),
            actual=actual_sha.hex(),
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != end_crc:
        raise CheckpointIntegrityError(
            "end-of-file CRC mismatch (trailer bytes corrupt)",
            section="trailer",
            offset=tstart,
            length=tlen + 4,
            expected=end_crc,
            actual=zlib.crc32(payload) & 0xFFFFFFFF,
        )
    return body, entries, sha


def read_section_table(data: bytes) -> Optional[list[SectionEntry]]:
    """Best-effort section table of a v3 file's bytes (None otherwise).

    Used by fsck and the fault injectors to locate section boundaries
    without requiring the file to verify — tolerates a damaged body but
    returns None when the trailer itself is unusable.
    """
    profile = FormatProfile.for_magic(data[: FormatProfile.magic_len()], None)
    if profile is None or not profile.integrity_trailer:
        return None
    if len(data) < 12 or data[-12:-4] != CHECKPOINT_END:
        return None
    try:
        payload = data[:-12]
        (tlen,) = struct.unpack("<I", payload[-4:])
        tstart = len(payload) - 4 - tlen
        if tstart < 0 or payload[tstart : tstart + 8] != TRAILER_MAGIC:
            return None
        tr = SectionReader(payload[tstart:-4])
        tr.begin("trailer")
        tr._take(len(TRAILER_MAGIC))
        entries = []
        for _ in range(tr.u32()):
            name = tr.str_lp()
            off, length, crc32v = struct.unpack("<QQI", tr._take(20))
            entries.append(SectionEntry(name, off, length, crc32v))
        return entries
    except (CheckpointFormatError, struct.error, UnicodeDecodeError):
        return None


def _parse_body(r: SectionReader, raw_arrays: bool = False) -> VMSnapshot:
    try:
        return _parse_body_sections(r, raw_arrays)
    except CheckpointFormatError:
        raise
    except (ValueError, struct.error, UnicodeDecodeError, IndexError,
            OverflowError) as e:
        # Corrupt-but-CRC-passing data cannot normally get here; the
        # tolerant truncation diagnosis can.  Never leak a raw
        # struct.error/IndexError to callers.
        raise CheckpointFormatError(
            f"malformed checkpoint data in section '{r.section}' at byte "
            f"offset {r.off}: {e}",
            section=r.section,
            offset=r.off,
        ) from e


def _parse_body_sections(r: SectionReader, raw_arrays: bool) -> VMSnapshot:
    r.begin("header")
    magic = r.data[r.off : r.off + FormatProfile.magic_len()]
    profile = FormatProfile.for_magic(magic)  # raises the typed bad-magic
    return profile.parse_body(r, raw_arrays)


# ---------------------------------------------------------------------------
# Delta-chain reconstruction (format v4)
# ---------------------------------------------------------------------------


def merge_delta_chain(chain: list[VMSnapshot], raw_arrays: bool = False) -> VMSnapshot:
    """Reconstruct a full snapshot from a base + ordered deltas.

    ``chain`` is ordered base-first: element 0 must be a full (non-delta)
    snapshot and every later element a v4 delta whose recorded parent
    SHA-256 matches the body digest of the element before it — the
    binding that stops a delta from being spliced onto the wrong
    generation.  Heap regions are applied oldest-to-newest with
    vectorized array splices; non-heap sections (threads, channels,
    boundaries, globals, index) come from the newest element, and
    omitted atom/C-global sections walk back to the nearest element that
    carries them.

    The merged snapshot presents itself as a plain full checkpoint
    (``delta`` is ``None``, header version
    ``FormatProfile.newest_full()``) so the existing restore pipeline —
    pointer fixing, endianness/word-size conversion — runs on it
    unchanged.
    """
    if not chain:
        raise CheckpointFormatError("empty delta chain")
    base = chain[0]
    if base.delta is not None:
        raise CheckpointIntegrityError(
            "delta chain has no full base: the oldest element is itself "
            f"a delta (chain depth {base.delta.chain_depth})",
            section="header",
        )
    if len(chain) == 1:
        return base
    # A lazily-opened base contributes ChunkSlice payloads; they stay
    # unread unless a delta actually splices bytes into (or reshapes)
    # that chunk, so splicing a chain reads only the parent sections the
    # dirty set touches.  Eager inputs keep the copy-up-front semantics.
    state: dict[int, object] = {
        cbase: (
            words
            if isinstance(words, ChunkSlice)
            else np.asarray(words, dtype=np.uint64).copy()
        )
        for cbase, words in base.heap_chunks
    }
    for prev, snap in zip(chain, chain[1:]):
        info = snap.delta
        if info is None:
            raise CheckpointFormatError(
                "full checkpoint in the middle of a delta chain"
            )
        if prev.body_sha256 is None or info.parent_sha256 != prev.body_sha256:
            have = prev.body_sha256.hex()[:16] if prev.body_sha256 else "unknown"
            raise CheckpointIntegrityError(
                f"delta parent hash mismatch: delta binds to "
                f"{info.parent_sha256.hex()[:16]}... but the preceding "
                f"generation's body is {have}...",
                section="header",
                expected=info.parent_sha256.hex(),
                actual=prev.body_sha256.hex() if prev.body_sha256 else None,
            )
        current: dict[int, object] = {}
        for rec in info.chunks:
            arr = state.get(rec.base)
            if arr is None or arr.size != rec.n_words:
                # A chunk the parent didn't have (or whose geometry
                # changed): it was freshly mapped, so its regions cover
                # every meaningful word.
                arr = np.zeros(rec.n_words, dtype=np.uint64)
            elif rec.regions and isinstance(arr, ChunkSlice):
                # First dirty write into a lazy parent chunk: now (and
                # only now) its payload bytes are worth reading.
                arr = arr.materialize().copy()
            for start, words in rec.regions:
                wa = np.asarray(words, dtype=np.uint64)
                if start + wa.size > arr.size:
                    raise CheckpointIntegrityError(
                        f"delta region [{start}, {start + wa.size}) "
                        f"overruns chunk of {arr.size} word(s)",
                        section="heap",
                    )
                arr[start : start + wa.size] = wa
            current[rec.base] = arr
        # Chunks absent from this delta's records were unmapped on the
        # saving machine (compaction) and are dropped here too.
        state = current
    head = chain[-1]
    heap_chunks: list[tuple[int, object]] = [
        (rec.base, state[rec.base] if raw_arrays else state[rec.base].tolist())
        for rec in head.delta.chunks
    ]
    atom_words = base.atom_words
    cglobal_words = base.cglobal_words
    cglobal_roots = base.cglobal_roots
    for snap in chain[1:]:
        if snap.delta.has_atoms:
            atom_words = snap.atom_words
        if snap.delta.has_cglobals:
            cglobal_words = snap.cglobal_words
            cglobal_roots = snap.cglobal_roots
    return VMSnapshot(
        header=replace(
            head.header, format_version=FormatProfile.newest_full().version
        ),
        boundaries=head.boundaries,
        freelist_head=head.freelist_head,
        global_data=head.global_data,
        allocated_words=head.allocated_words,
        heap_chunks=heap_chunks,
        atom_words=atom_words,
        cglobal_words=cglobal_words,
        cglobal_roots=cglobal_roots,
        threads=head.threads,
        channels=head.channels,
        chunk_index=head.chunk_index,
        sections=None,
        delta=None,
        body_sha256=head.body_sha256,
    )
