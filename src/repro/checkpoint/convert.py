"""Data-representation conversion (paper §3.2.1).

Checkpoints are written in the saving machine's native representation;
conversion happens on restart and only when the architectures differ:

* endianness: decoding the file with the source byte order already
  yields correct *word values*, but string and double payloads are
  byte-oriented, so their words must be repacked for the target's
  in-memory byte order (tag-directed, exactly what the block tags make
  possible);
* word size: every word is re-encoded — immediates preserve their
  numeric value (wrapping with the sign maintained on 64->32, as the
  paper concedes), strings and doubles are re-packed into a different
  number of words, pointers go through the relocation map.
"""

from __future__ import annotations

import numpy as np

from repro.arch.architecture import Architecture, Endianness
from repro.memory.floats import FloatCodec
from repro.memory.strings import StringCodec
from repro.memory.values import ValueCodec


class ValueConverter:
    """Converts words between a source and a target architecture."""

    def __init__(self, src: Architecture, dst: Architecture) -> None:
        self.src = src
        self.dst = dst
        self.src_values = ValueCodec(src)
        self.dst_values = ValueCodec(dst)
        self._src_strings = StringCodec(src)
        self._dst_strings = StringCodec(dst)
        self._src_floats = FloatCodec(src)
        self._dst_floats = FloatCodec(dst)

    @property
    def endian_differs(self) -> bool:
        """True when string/double payloads need repacking."""
        return self.src.endianness is not self.dst.endianness

    @property
    def word_size_differs(self) -> bool:
        """True when the heap must be rebuilt block by block."""
        return self.src.bits != self.dst.bits

    @property
    def identity(self) -> bool:
        """True when no conversion at all is needed."""
        return not self.endian_differs and not self.word_size_differs

    # -- scalar conversions ---------------------------------------------------

    def convert_immediate(self, word: int) -> int:
        """Convert a tagged immediate, preserving its numeric value.

        On 64->32 bit the value wraps into the 31-bit range with its
        sign maintained (paper: "in the transition from 64-bit to 32-bit
        some data might be lost ... our conversion mechanism takes care
        to maintain the sign of values").
        """
        if self.src.bits == self.dst.bits:
            return word
        return self.dst_values.val_int(self.src_values.int_val(word))

    def convert_raw(self, word: int) -> int:
        """Convert an opaque word (no-scan payload), sign-extended."""
        if self.src.bits == self.dst.bits:
            return word
        return self.dst.to_unsigned(self.src.to_signed(word))

    # -- batch conversions (vectorized fast path) -----------------------------

    def convert_raw_array(self, arr: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`convert_raw` over a ``uint64`` array."""
        if self.src.bits == self.dst.bits:
            return arr
        if self.src.bits == 64:  # 64 -> 32: truncate (sign kept mod 2**32)
            return arr & np.uint64(0xFFFFFFFF)
        # 32 -> 64: sign-extend from bit 31.
        out = arr.copy()
        out[(arr & np.uint64(0x80000000)) != 0] |= np.uint64(
            0xFFFFFFFF00000000
        )
        return out

    def convert_raw_many(self, words: list[int]) -> list[int]:
        """Batch :meth:`convert_raw` over a list of words."""
        if self.src.bits == self.dst.bits:
            return list(words)
        arr = np.asarray(words, dtype=np.uint64)
        return self.convert_raw_array(arr).tolist()

    def convert_immediate_array(self, arr: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`convert_immediate` over a ``uint64`` array.

        Every element must be an immediate (LSB set); non-immediates in
        the input are the caller's bug, not detected here.
        """
        if self.src.bits == self.dst.bits:
            return arr
        if self.src.bits == 64:
            n = arr.view(np.int64) >> 1  # arithmetic shift = Int_val
        else:
            n = arr.astype(np.uint32).view(np.int32).astype(np.int64) >> 1
        boxed = ((n << 1) | 1).view(np.uint64)
        return boxed & np.uint64(self.dst.word_mask)

    def repack_string_array(self, arr: np.ndarray) -> np.ndarray:
        """Vectorized same-word-size string repack (endian swap).

        The payload's byte *sequence* is the invariant, so with equal
        word sizes each word's bytes simply reverse.  Cross-word-size
        strings go through the scalar :meth:`repack_string` (the word
        count changes, which this in-place kernel cannot express).
        """
        if not self.endian_differs:
            return arr
        if self.src.word_bytes == 8:
            return arr.byteswap()
        return arr.astype(np.uint32).byteswap().astype(np.uint64)

    def repack_double_array(self, arr: np.ndarray) -> np.ndarray:
        """Vectorized same-word-size double repack (endian swap).

        A 64-bit double word holds the IEEE bit pattern as a value, so
        its cross-endian repack is the identity at the word-value level.
        On 32-bit the pattern spans two words in memory order, so the
        pair's word *values* swap places.
        """
        if not self.endian_differs or self.src.word_bytes == 8:
            return arr
        out = np.empty_like(arr)
        out[0::2] = arr[1::2]
        out[1::2] = arr[0::2]
        return out

    def double_pattern_array(self, arr: np.ndarray) -> np.ndarray:
        """IEEE bit patterns (one ``uint64`` each) of a double payload.

        ``arr`` is the concatenated payload words of same-sized double
        blocks in the *source* representation.
        """
        if self.src.word_bytes == 8:
            return arr
        if self.src.endianness is Endianness.LITTLE:
            lo, hi = arr[0::2], arr[1::2]
        else:
            hi, lo = arr[0::2], arr[1::2]
        return lo | (hi << np.uint64(32))

    def double_words_from_patterns(self, patterns: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`double_pattern_array`, for the *target*."""
        if self.dst.word_bytes == 8:
            return patterns
        lo = patterns & np.uint64(0xFFFFFFFF)
        hi = patterns >> np.uint64(32)
        out = np.empty(patterns.size * 2, dtype=np.uint64)
        if self.dst.endianness is Endianness.LITTLE:
            out[0::2], out[1::2] = lo, hi
        else:
            out[0::2], out[1::2] = hi, lo
        return out

    # -- payload conversions -------------------------------------------------------

    def repack_string(self, words: list[int]) -> list[int]:
        """Re-pack a string payload for the target architecture.

        The byte *sequence* is the invariant; the word values change
        whenever endianness or word size differ.
        """
        return self._dst_strings.encode(self._src_strings.decode(words))

    def repack_double(self, words: list[int]) -> list[int]:
        """Re-encode an IEEE double payload for the target architecture."""
        return self._dst_floats.encode(self._src_floats.decode(words))

    def string_target_words(self, words: list[int]) -> int:
        """Target payload size in words of a repacked string."""
        return self._dst_strings.words_needed(
            self._src_strings.byte_length(words)
        )

    @property
    def double_target_words(self) -> int:
        """Target payload size in words of a double block."""
        return self._dst_floats.words_per_double
