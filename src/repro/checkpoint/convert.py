"""Data-representation conversion (paper §3.2.1).

Checkpoints are written in the saving machine's native representation;
conversion happens on restart and only when the architectures differ:

* endianness: decoding the file with the source byte order already
  yields correct *word values*, but string and double payloads are
  byte-oriented, so their words must be repacked for the target's
  in-memory byte order (tag-directed, exactly what the block tags make
  possible);
* word size: every word is re-encoded — immediates preserve their
  numeric value (wrapping with the sign maintained on 64->32, as the
  paper concedes), strings and doubles are re-packed into a different
  number of words, pointers go through the relocation map.
"""

from __future__ import annotations

from repro.arch.architecture import Architecture
from repro.memory.floats import FloatCodec
from repro.memory.strings import StringCodec
from repro.memory.values import ValueCodec


class ValueConverter:
    """Converts words between a source and a target architecture."""

    def __init__(self, src: Architecture, dst: Architecture) -> None:
        self.src = src
        self.dst = dst
        self.src_values = ValueCodec(src)
        self.dst_values = ValueCodec(dst)
        self._src_strings = StringCodec(src)
        self._dst_strings = StringCodec(dst)
        self._src_floats = FloatCodec(src)
        self._dst_floats = FloatCodec(dst)

    @property
    def endian_differs(self) -> bool:
        """True when string/double payloads need repacking."""
        return self.src.endianness is not self.dst.endianness

    @property
    def word_size_differs(self) -> bool:
        """True when the heap must be rebuilt block by block."""
        return self.src.bits != self.dst.bits

    @property
    def identity(self) -> bool:
        """True when no conversion at all is needed."""
        return not self.endian_differs and not self.word_size_differs

    # -- scalar conversions ---------------------------------------------------

    def convert_immediate(self, word: int) -> int:
        """Convert a tagged immediate, preserving its numeric value.

        On 64->32 bit the value wraps into the 31-bit range with its
        sign maintained (paper: "in the transition from 64-bit to 32-bit
        some data might be lost ... our conversion mechanism takes care
        to maintain the sign of values").
        """
        if self.src.bits == self.dst.bits:
            return word
        return self.dst_values.val_int(self.src_values.int_val(word))

    def convert_raw(self, word: int) -> int:
        """Convert an opaque word (no-scan payload), sign-extended."""
        if self.src.bits == self.dst.bits:
            return word
        return self.dst.to_unsigned(self.src.to_signed(word))

    # -- payload conversions -------------------------------------------------------

    def repack_string(self, words: list[int]) -> list[int]:
        """Re-pack a string payload for the target architecture.

        The byte *sequence* is the invariant; the word values change
        whenever endianness or word size differ.
        """
        return self._dst_strings.encode(self._src_strings.decode(words))

    def repack_double(self, words: list[int]) -> list[int]:
        """Re-encode an IEEE double payload for the target architecture."""
        return self._dst_floats.encode(self._src_floats.decode(words))

    def string_target_words(self, words: list[int]) -> int:
        """Target payload size in words of a repacked string."""
        return self._dst_strings.words_needed(
            self._src_strings.byte_length(words)
        )

    @property
    def double_target_words(self) -> int:
        """Target payload size in words of a double block."""
        return self._dst_floats.words_per_double
