"""Verify-and-repair for checkpoint files (``repro fsck``).

Verification is local: the v3 section table pins down *which* bytes are
damaged.  Repair uses a store replica — the chunk manifests the store
already keeps (PR 2) address the payload in fixed-size chunks, so a
single flipped bit re-fetches one 64 KiB chunk, not the whole
checkpoint.  When surgical patching cannot work (truncation, a damaged
trailer, a v1/v2 file with no section table, or patching failed to
converge), fsck falls back to re-fetching the entire replica payload.

Every repair re-verifies the result before committing it (atomically,
through the same journal + rename protocol checkpoints use) and is
counted in :data:`repro.metrics.INTEGRITY`.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Optional, Protocol

from repro.checkpoint.commit import atomic_commit
from repro.checkpoint.format import (
    _parse_checkpoint,
    read_section_table,
)
from repro.errors import RestartError, StoreError
from repro.metrics import INTEGRITY


class ReplicaSource(Protocol):
    """Where repairs come from: a chunk manifest plus chunk fetches."""

    def manifest(self, vm_id: str, generation: Optional[int]):
        """Return the :class:`~repro.store.chunkstore.Manifest`."""

    def chunk(self, key: str) -> bytes:
        """Return one verified chunk payload."""


class LocalStoreSource:
    """Repair from a :class:`~repro.store.chunkstore.ChunkStore` directory."""

    def __init__(self, store) -> None:
        self.store = store

    def manifest(self, vm_id: str, generation: Optional[int]):
        return self.store.read_manifest(vm_id, generation)

    def chunk(self, key: str) -> bytes:
        return self.store.get_object(key)


class ClientSource:
    """Repair from a running store daemon via :class:`StoreClient`."""

    def __init__(self, client) -> None:
        self.client = client

    def manifest(self, vm_id: str, generation: Optional[int]):
        return self.client.get_manifest(vm_id, generation)

    def chunk(self, key: str) -> bytes:
        return self.client.get_chunk(key)


def verify_checkpoint_bytes(data: bytes) -> list[dict]:
    """All detectable problems in a checkpoint image (empty = healthy).

    Where the v3 section table survives, each CRC-failing section is
    reported individually with its byte range — the shopping list the
    repair path works from.  Structural failures (truncation, bad
    magic, an unreadable trailer) yield a single whole-file problem
    with ``section``/``offset`` taken from the parse error.
    """
    problems: list[dict] = []
    table = read_section_table(data)
    if table is not None:
        for s in table:
            actual = zlib.crc32(data[s.offset : s.end]) & 0xFFFFFFFF
            if actual != s.crc32:
                problems.append(
                    {
                        "section": s.name,
                        "offset": s.offset,
                        "length": s.length,
                        "expected": f"{s.crc32:08x}",
                        "actual": f"{actual:08x}",
                        "error": (
                            f"section '{s.name}' CRC mismatch "
                            f"(bytes {s.offset}..{s.end})"
                        ),
                    }
                )
        if problems:
            return problems
    try:
        _parse_checkpoint(data)
    except RestartError as e:
        problems.append(
            {
                "section": getattr(e, "section", None),
                "offset": getattr(e, "offset", None),
                "length": None,
                "error": str(e),
            }
        )
    return problems


def _patch_from_chunks(
    data: bytearray,
    ranges: list[tuple[int, int]],
    manifest,
    source: ReplicaSource,
) -> int:
    """Overwrite the chunks covering ``ranges`` with replica bytes.

    Returns the number of chunks fetched.  Only valid when the replica
    payload has the same length as the damaged file (same generation).
    """
    cs = manifest.chunk_size
    needed: set[int] = set()
    for offset, length in ranges:
        first = offset // cs
        last = (offset + max(length, 1) - 1) // cs
        needed.update(range(first, min(last, len(manifest.chunks) - 1) + 1))
    for i in sorted(needed):
        chunk = source.chunk(manifest.chunks[i])
        data[i * cs : i * cs + len(chunk)] = chunk
    return len(needed)


def fsck_checkpoint(
    path: str,
    repair: bool = False,
    source: Optional[ReplicaSource] = None,
    vm_id: Optional[str] = None,
    generation: Optional[int] = None,
) -> dict:
    """Verify ``path``; with ``repair`` and a replica, fix it in place.

    Returns a JSON-able report::

        {"path", "ok", "problems": [...], "action", "sections_repaired",
         "chunks_fetched"}

    ``action`` is ``"none"`` (healthy or no repair requested),
    ``"patched"`` (damaged sections re-fetched chunk-wise),
    ``"refetched"`` (whole payload replaced from the replica), or
    ``"unrepairable"``.
    """
    report: dict = {
        "path": path,
        "ok": False,
        "problems": [],
        "action": "none",
        "sections_repaired": 0,
        "chunks_fetched": 0,
    }
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        report["problems"] = [{"error": f"cannot read {path}: {e}"}]
        data = b""
        if not (repair and source is not None):
            return report
    else:
        report["problems"] = verify_checkpoint_bytes(data)
        report["ok"] = not report["problems"]
        if report["ok"] or not repair:
            return report
    if source is None or vm_id is None:
        report["problems"].append(
            {"error": "repair requires a store replica (--addr/--store-root "
                      "and --vm-id)"}
        )
        return report
    try:
        manifest = source.manifest(vm_id, generation)
    except StoreError as e:
        report["problems"].append({"error": f"replica unavailable: {e}"})
        return report

    sectional = [
        (p["offset"], p["length"])
        for p in report["problems"]
        if p.get("length") is not None and p.get("offset") is not None
    ]
    if sectional and len(data) == manifest.payload_len:
        patched = bytearray(data)
        try:
            report["chunks_fetched"] = _patch_from_chunks(
                patched, sectional, manifest, source
            )
        except StoreError as e:
            report["problems"].append({"error": f"chunk fetch failed: {e}"})
            patched = None
        if patched is not None and not verify_checkpoint_bytes(
            bytes(patched)
        ):
            atomic_commit(path, bytes(patched))
            report["ok"] = True
            report["action"] = "patched"
            report["sections_repaired"] = len(sectional)
            INTEGRITY.sections_repaired += len(sectional)
            return report

    # Surgical patching impossible or insufficient: replace wholesale.
    try:
        payload = b"".join(source.chunk(k) for k in manifest.chunks)
    except StoreError as e:
        report["problems"].append({"error": f"replica fetch failed: {e}"})
        report["action"] = "unrepairable"
        return report
    if (
        len(payload) != manifest.payload_len
        or hashlib.sha256(payload).hexdigest() != manifest.payload_sha256
    ):
        report["problems"].append(
            {"error": "replica payload fails its own manifest digest"}
        )
        report["action"] = "unrepairable"
        return report
    remaining = verify_checkpoint_bytes(payload)
    if remaining:
        report["problems"].append(
            {"error": "replica payload is itself a damaged checkpoint"}
        )
        report["action"] = "unrepairable"
        return report
    atomic_commit(path, payload)
    report["ok"] = True
    report["action"] = "refetched"
    report["sections_repaired"] = len(sectional) or 1
    INTEGRITY.sections_repaired += report["sections_repaired"]
    return report
