"""Verify-and-repair for checkpoint files (``repro fsck``).

Verification is local: the v3 section table pins down *which* bytes are
damaged.  Repair uses a store replica — the chunk manifests the store
already keeps (PR 2) address the payload in fixed-size chunks, so a
single flipped bit re-fetches one 64 KiB chunk, not the whole
checkpoint.  When surgical patching cannot work (truncation, a damaged
trailer, a v1/v2 file with no section table, or patching failed to
converge), fsck falls back to re-fetching the entire replica payload.

Every repair re-verifies the result before committing it (atomically,
through the same journal + rename protocol checkpoints use) and is
counted in :data:`repro.metrics.INTEGRITY`.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Protocol

from repro.checkpoint.commit import atomic_commit
from repro.checkpoint.schema import FormatProfile, SnapshotSource
from repro.errors import RestartError, StoreError
from repro.metrics import INTEGRITY


class ReplicaSource(Protocol):
    """Where repairs come from: a chunk manifest plus chunk fetches."""

    def manifest(self, vm_id: str, generation: Optional[int]):
        """Return the :class:`~repro.store.chunkstore.Manifest`."""

    def chunk(self, key: str) -> bytes:
        """Return one verified chunk payload."""


class LocalStoreSource:
    """Repair from a :class:`~repro.store.chunkstore.ChunkStore` directory."""

    def __init__(self, store) -> None:
        self.store = store

    def manifest(self, vm_id: str, generation: Optional[int]):
        return self.store.read_manifest(vm_id, generation)

    def chunk(self, key: str) -> bytes:
        return self.store.get_object(key)

    def generations(self, vm_id: str) -> list[int]:
        return list(self.store.generations(vm_id))


class ClientSource:
    """Repair from a running store daemon via :class:`StoreClient`."""

    def __init__(self, client) -> None:
        self.client = client

    def manifest(self, vm_id: str, generation: Optional[int]):
        return self.client.get_manifest(vm_id, generation)

    def chunk(self, key: str) -> bytes:
        return self.client.get_chunk(key)

    def generations(self, vm_id: str) -> list[int]:
        listing = self.client.ls().get("vms", {}).get(vm_id, [])
        return sorted(g["generation"] for g in listing)


def verify_checkpoint_bytes(data: bytes) -> list[dict]:
    """All detectable problems in a checkpoint image (empty = healthy).

    Where the v3 section table survives, each CRC-failing section is
    reported individually with its byte range — the shopping list the
    repair path works from.  Structural failures (truncation, bad
    magic, an unreadable trailer) yield a single whole-file problem
    with ``section``/``offset`` taken from the parse error.
    """
    problems: list[dict] = []
    src = SnapshotSource.from_bytes(data, tolerant=True)
    if src.handles is not None:
        # The section table survived: probe every handle's extent
        # individually — each failing CRC is one repairable range.
        for s in src.handles:
            actual = s.crc_actual()
            if actual != s.crc32:
                problems.append(
                    {
                        "section": s.name,
                        "offset": s.offset,
                        "length": s.length,
                        "expected": f"{s.crc32:08x}",
                        "actual": f"{actual:08x}",
                        "error": (
                            f"section '{s.name}' CRC mismatch "
                            f"(bytes {s.offset}..{s.end})"
                        ),
                    }
                )
        if problems:
            return problems
    try:
        src.resolve_all()
    except RestartError as e:
        problems.append(
            {
                "section": getattr(e, "section", None),
                "offset": getattr(e, "offset", None),
                "length": None,
                "error": str(e),
            }
        )
    return problems


def _patch_from_chunks(
    data: bytearray,
    ranges: list[tuple[int, int]],
    manifest,
    source: ReplicaSource,
) -> int:
    """Overwrite the chunks covering ``ranges`` with replica bytes.

    Returns the number of chunks fetched.  Only valid when the replica
    payload has the same length as the damaged file (same generation).
    """
    cs = manifest.chunk_size
    needed: set[int] = set()
    for offset, length in ranges:
        first = offset // cs
        last = (offset + max(length, 1) - 1) // cs
        needed.update(range(first, min(last, len(manifest.chunks) - 1) + 1))
    for i in sorted(needed):
        chunk = source.chunk(manifest.chunks[i])
        data[i * cs : i * cs + len(chunk)] = chunk
    return len(needed)


def fsck_checkpoint(
    path: str,
    repair: bool = False,
    source: Optional[ReplicaSource] = None,
    vm_id: Optional[str] = None,
    generation: Optional[int] = None,
) -> dict:
    """Verify ``path``; with ``repair`` and a replica, fix it in place.

    Returns a JSON-able report::

        {"path", "ok", "problems": [...], "action", "sections_repaired",
         "chunks_fetched"}

    ``action`` is ``"none"`` (healthy or no repair requested),
    ``"patched"`` (damaged sections re-fetched chunk-wise),
    ``"refetched"`` (whole payload replaced from the replica), or
    ``"unrepairable"``.
    """
    report: dict = {
        "path": path,
        "ok": False,
        "problems": [],
        "action": "none",
        "sections_repaired": 0,
        "chunks_fetched": 0,
    }
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        report["problems"] = [{"error": f"cannot read {path}: {e}"}]
        data = b""
        if not (repair and source is not None):
            return report
    else:
        report["problems"] = verify_checkpoint_bytes(data)
        report["ok"] = not report["problems"]
        if report["ok"] or not repair:
            return report
    if source is None or vm_id is None:
        report["problems"].append(
            {"error": "repair requires a store replica (--addr/--store-root "
                      "and --vm-id)"}
        )
        return report
    try:
        manifest = source.manifest(vm_id, generation)
    except StoreError as e:
        report["problems"].append({"error": f"replica unavailable: {e}"})
        return report

    sectional = [
        (p["offset"], p["length"])
        for p in report["problems"]
        if p.get("length") is not None and p.get("offset") is not None
    ]
    if sectional and len(data) == manifest.payload_len:
        patched = bytearray(data)
        try:
            report["chunks_fetched"] = _patch_from_chunks(
                patched, sectional, manifest, source
            )
        except StoreError as e:
            report["problems"].append({"error": f"chunk fetch failed: {e}"})
            patched = None
        if patched is not None and not verify_checkpoint_bytes(
            bytes(patched)
        ):
            atomic_commit(path, bytes(patched))
            report["ok"] = True
            report["action"] = "patched"
            report["sections_repaired"] = len(sectional)
            INTEGRITY.sections_repaired += len(sectional)
            return report

    # Surgical patching impossible or insufficient: replace wholesale.
    try:
        payload = b"".join(source.chunk(k) for k in manifest.chunks)
    except StoreError as e:
        report["problems"].append({"error": f"replica fetch failed: {e}"})
        report["action"] = "unrepairable"
        return report
    if (
        len(payload) != manifest.payload_len
        or hashlib.sha256(payload).hexdigest() != manifest.payload_sha256
    ):
        report["problems"].append(
            {"error": "replica payload fails its own manifest digest"}
        )
        report["action"] = "unrepairable"
        return report
    remaining = verify_checkpoint_bytes(payload)
    if remaining:
        report["problems"].append(
            {"error": "replica payload is itself a damaged checkpoint"}
        )
        report["action"] = "unrepairable"
        return report
    atomic_commit(path, payload)
    report["ok"] = True
    report["action"] = "refetched"
    report["sections_repaired"] = len(sectional) or 1
    INTEGRITY.sections_repaired += report["sections_repaired"]
    return report


# ---------------------------------------------------------------------------
# Delta-chain fsck
# ---------------------------------------------------------------------------


def _chain_link_report(path: str) -> dict:
    """Verify one chain link and extract its chain identity."""
    entry: dict = {
        "path": path,
        "kind": "unknown",
        "ok": False,
        "problems": [],
        "body_sha256": None,
        "parent_sha256": None,
    }
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        entry["problems"] = [{"error": f"cannot read {path}: {e}"}]
        return entry
    # The magic alone decides delta-ness, so discovery keeps walking
    # past a link too damaged to parse.
    profile = FormatProfile.for_magic(data[: FormatProfile.magic_len()], None)
    if profile is not None and profile.delta:
        entry["kind"] = "delta"
    entry["problems"] = verify_checkpoint_bytes(data)
    entry["ok"] = not entry["problems"]
    if entry["ok"]:
        snap = SnapshotSource.from_bytes(data).resolve_all()
        if snap.body_sha256 is not None:
            entry["body_sha256"] = snap.body_sha256.hex()
        if snap.delta is not None:
            entry["kind"] = "delta"
            entry["parent_sha256"] = snap.delta.parent_sha256.hex()
        else:
            entry["kind"] = "full"
    return entry


def _chain_generations(
    source: ReplicaSource,
    vm_id: str,
    links: list[dict],
    head_generation: Optional[int],
) -> list[Optional[int]]:
    """Store generations aligned to the local chain, head first.

    Alignment uses two signals: any locally verifiable link is matched
    to a store generation by its own body SHA, and the damaged gaps in
    between are filled by following the ``parent_sha256`` ->
    ``body_sha256`` links the HA supervisor records in manifest meta.
    Sources or uploads without that meta can only locate the head.
    """
    chain: list[Optional[int]] = [None] * len(links)
    gen_of = getattr(source, "generations", None)
    if gen_of is None:
        chain[0] = head_generation
        return chain
    try:
        gens = list(gen_of(vm_id))
    except StoreError:
        gens = []
    if not gens:
        chain[0] = head_generation
        return chain
    metas: dict[int, dict] = {}
    for g in gens:
        try:
            metas[g] = source.manifest(vm_id, g).meta or {}
        except StoreError:
            metas[g] = {}
    used: set[int] = set()

    def by_body(sha: Optional[str]) -> Optional[int]:
        cands = [
            g
            for g in gens
            if sha and g not in used and metas[g].get("body_sha256") == sha
        ]
        return max(cands) if cands else None

    chain[0] = (
        head_generation
        if head_generation is not None
        else by_body(links[0]["body_sha256"])
    )
    if chain[0] is None and all(e["body_sha256"] is None for e in links):
        # Nothing verifies locally and no explicit generation: assume
        # the store's newest generation is the chain head.
        chain[0] = max(gens)
    if chain[0] is not None:
        used.add(chain[0])
    for idx in range(1, len(links)):
        g = by_body(links[idx]["body_sha256"])
        if g is None:
            # The link itself is unreadable; find it through what its
            # child recorded as the parent SHA — the locally verified
            # child binding if available, otherwise the store meta of
            # the child's generation.
            psha = links[idx - 1].get("parent_sha256")
            if not psha and chain[idx - 1] is not None:
                psha = metas.get(chain[idx - 1], {}).get("parent_sha256")
            g = by_body(psha)
        chain[idx] = g
        if g is not None:
            used.add(g)
    return chain


def fsck_chain(
    path: str,
    repair: bool = False,
    source: Optional[ReplicaSource] = None,
    vm_id: Optional[str] = None,
    generation: Optional[int] = None,
) -> dict:
    """Verify ``path`` and, for a v4 delta head, its whole parent chain.

    Each link gets its own verification report plus a binding check
    (every delta's recorded parent SHA must match the next generation's
    body SHA).  Repair runs base-first: a delta is only repaired once
    everything beneath it verifies — patching a delta whose base is
    unverifiable would manufacture a chain that merges into garbage, so
    that repair is refused instead.
    """
    from repro.checkpoint.reader import MAX_DELTA_CHAIN, next_generation_path

    report: dict = {
        "path": path,
        "ok": False,
        "kind": "full",
        "chain_depth": 0,
        "links": [],
        "action": "none",
        "sections_repaired": 0,
        "chunks_fetched": 0,
    }
    p = path
    for _ in range(MAX_DELTA_CHAIN + 1):
        entry = _chain_link_report(p)
        report["links"].append(entry)
        if entry["kind"] != "delta":
            break
        p = next_generation_path(p)
    else:
        last = report["links"][-1]
        last["ok"] = False
        last["problems"].append(
            {"error": f"delta chain deeper than {MAX_DELTA_CHAIN} links"}
        )
    links = report["links"]
    report["kind"] = "delta" if links[0]["kind"] == "delta" else "full"
    report["chain_depth"] = len(links) - 1

    if (
        repair
        and any(not e["ok"] for e in links)
        and source is not None
        and vm_id is not None
    ):
        gens = _chain_generations(source, vm_id, links, generation)
        deeper_ok = True  # everything beneath the current link verifies
        for idx in range(len(links) - 1, -1, -1):
            entry = links[idx]
            if entry["ok"]:
                continue
            if not deeper_ok:
                entry["problems"].append(
                    {
                        "error": "repair refused: this delta's base chain "
                        "is unverifiable",
                    }
                )
                report["action"] = "refused"
                continue
            gen = gens[idx] if idx < len(gens) else None
            if gen is None and idx > 0:
                entry["problems"].append(
                    {"error": "no store generation locatable for this link"}
                )
                deeper_ok = False
                report["action"] = "unrepairable"
                continue
            sub = fsck_checkpoint(
                entry["path"],
                repair=True,
                source=source,
                vm_id=vm_id,
                generation=gen,
            )
            report["sections_repaired"] += sub["sections_repaired"]
            report["chunks_fetched"] += sub["chunks_fetched"]
            if sub["ok"]:
                links[idx] = _chain_link_report(entry["path"])
                if report["action"] == "none":
                    report["action"] = "repaired"
            else:
                entry["problems"] = sub["problems"]
                deeper_ok = False
                report["action"] = "unrepairable"

    # Binding verification over the (possibly repaired) files.
    for child, parent in zip(links, links[1:]):
        if (
            child.get("parent_sha256")
            and parent.get("body_sha256")
            and child["parent_sha256"] != parent["body_sha256"]
        ):
            child["ok"] = False
            child["problems"].append(
                {
                    "error": (
                        f"chain binding mismatch: {child['path']} expects "
                        f"parent body SHA {child['parent_sha256'][:16]}... "
                        f"but {parent['path']} has "
                        f"{parent['body_sha256'][:16]}..."
                    ),
                }
            )
    report["ok"] = all(e["ok"] for e in links)
    report["problems"] = [
        dict(prob, link=e["path"]) for e in links for prob in e["problems"]
    ]
    return report
