"""The restart mechanism (paper §4.2, Figure 7).

Steps, mapped onto this implementation:

1.  Open the checkpoint file, check the signature and CRC.
2.  Read the architecture marker: detect endianness (the saved constant
    one) and word size; set the conversion flags.  Read the application
    type and thread table.
3.  Read the original boundary addresses.
4.  Read the abstract registers (fixed up later, once the mapper
    exists).
5.  Restore the heap: same word size -> re-instantiate each chunk and
    keep the block layout (freelist included); different word size ->
    re-encode the heap block by block into a fresh heap, building a
    relocation table.
6.  Restore the atom table and VM globals, adjusting pointers.
7.  Restore the application stack, reallocating if the checkpointed
    stack is larger than the fresh one, and adjust its pointers.
8.  Restore the other threads' state and stacks.
9.  Adjust pointers in the heap, walking live blocks via the GC's block
    layout knowledge (tag-directed; strings and doubles are repacked
    rather than value-fixed).  The collector is disabled throughout
    (§3.2.2).
10. Restore channels (reopen files, seek to saved positions).
11. Close and hand the VM back, ready to continue from the safe point.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import BinaryIO, Optional

import numpy as np

from repro.arch.architecture import Endianness
from repro.arch.platforms import Platform
from repro.bytecode.image import CodeImage
from repro.checkpoint.commit import generation_chain, recover_commit
from repro.checkpoint.convert import ValueConverter
from repro.checkpoint.format import (
    VMSnapshot,
    annotate_restore_error,
    merge_delta_chain,
    read_checkpoint,
)
from repro.checkpoint.relocate import AddressMapper
from repro.checkpoint.schema import SnapshotSource
from repro.errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    HeapExhausted,
    RestartError,
)
from repro.metrics import INTEGRITY, RESTART
from repro.memory.blocks import (
    Color,
    DOUBLE_TAG,
    HeaderCodec,
    NO_SCAN_TAG,
    STRING_TAG,
)
from repro.memory.heap import PAGE_SIZE, Heap
from repro.memory.layout import AreaKind, MemoryArea
from repro.metrics import PhaseTimer
from repro.threads.thread import BlockKind, ThreadState, VMThread
from repro.vm import VMConfig, VirtualMachine


@dataclass
class RestartStats:
    """Timings for one restart (drives Figures 12/14)."""

    phases: PhaseTimer = field(default_factory=PhaseTimer)
    converted_endianness: bool = False
    converted_word_size: bool = False
    heap_words: int = 0
    dangling_pointers: int = 0
    #: The file actually restored — differs from the requested path when
    #: a fallback walked the generation chain past a damaged head.
    restored_path: str = ""
    #: One entry per generation the fallback walk skipped: which link
    #: failed, why, and (when the typed error knows) which section and
    #: format version were involved.  Empty on a clean head restore.
    fallback_failures: list = field(default_factory=list)
    #: True when heap conversion was deferred to first touch
    #: (``--lazy-restore``): ``total_seconds`` is then the blocking
    #: time-to-first-output and the converted share of the heap keeps
    #: accruing below as chunks fault in or the drainer runs.
    lazy: bool = False
    lazy_chunks_total: int = 0
    lazy_chunks_converted: int = 0
    #: Wall time spent inside conversion thunks so far (grows after
    #: restart returns; see :class:`LazyRestoreState`).
    lazy_seconds: float = 0.0
    #: Body sections whose read + CRC + parse were still deferred when
    #: restart returned (``--lazy-restore`` with a v3+ file), and the
    #: byte split between verified-up-front and deferred data.  The
    #: deferred bytes are verified by the background drain / the
    #: ``lazy_finish`` barrier; see :class:`SnapshotSource`.
    sections_deferred: int = 0
    bytes_verified: int = 0
    bytes_deferred: int = 0

    @property
    def total_seconds(self) -> float:
        """Blocking restore time (time-to-first-output under lazy)."""
        return self.phases.total

    @property
    def completion_seconds(self) -> float:
        """Blocking time plus all lazy conversion work done so far."""
        return self.phases.total + self.lazy_seconds


#: Hard ceiling on delta-chain depth during reconstruction — far above
#: any depth the writer produces (``chkpt_full_every`` forces periodic
#: fulls) but low enough to stop a corrupt header from looping forever.
MAX_DELTA_CHAIN = 64


def next_generation_path(path: str) -> str:
    """Where the parent generation of ``path`` lives on disk.

    Mirrors the rotation in :func:`repro.checkpoint.commit.atomic_commit`:
    the head's previous generation moves to ``path.1``, whose previous
    generation moves to ``path.2``, and so on — so the parent of
    ``path.N`` is ``path.N+1``.  The existence probe disambiguates a
    head path whose own name ends in a digit suffix.
    """
    candidate = f"{path}.1"
    if os.path.exists(candidate):
        return candidate
    stem, dot, suffix = path.rpartition(".")
    if dot and suffix.isdigit():
        return f"{stem}.{int(suffix) + 1}"
    return candidate


def load_snapshot_chain(
    path: str, raw_arrays: bool = False, defer: bool = False
) -> VMSnapshot:
    """Read ``path``, reconstructing through its delta chain if needed.

    A full (v1-v3) checkpoint is returned as-is.  A v4 delta walks the
    generation chain (``path.1``, ``path.2``, ...) until a full base is
    found, validates each parent-SHA binding, and splices the dirty
    regions newest-last into a merged full snapshot.  Any break in the
    chain — a missing generation, a parent-hash mismatch, a chain deeper
    than :data:`MAX_DELTA_CHAIN` — raises a typed
    :class:`~repro.errors.CheckpointIntegrityError`, which the caller's
    generation fallback treats like any other damaged head.

    With ``defer`` every link opens through a lazily-resolving
    :class:`~repro.checkpoint.schema.SnapshotSource`: heap payloads stay
    on disk behind chunk slices, delta splicing reads only the parent
    chunks the dirty set touches, and the open sources ride along on the
    returned snapshot's ``_sources`` attribute so the lazy-restore drain
    can finish their verification later.
    """
    sources: list[SnapshotSource] = []

    def read_link(p: str) -> VMSnapshot:
        if not defer:
            return read_checkpoint(p, raw_arrays=raw_arrays)
        try:
            src = SnapshotSource.open(p, raw_arrays=raw_arrays, defer=True)
        except CheckpointFormatError as e:
            INTEGRITY.integrity_failures += 1
            raise annotate_restore_error(e, p) from e
        sources.append(src)
        return src.snapshot

    snap = read_link(path)
    if snap.delta is None:
        snap._sources = sources
        return snap
    chain = [snap]
    current = path
    while chain[-1].delta is not None:
        if len(chain) > MAX_DELTA_CHAIN:
            raise annotate_restore_error(
                CheckpointIntegrityError(
                    f"delta chain deeper than {MAX_DELTA_CHAIN} "
                    f"generations (corrupt chain header?)",
                    section="header",
                ),
                path,
            )
        current = next_generation_path(current)
        try:
            chain.append(read_link(current))
        except OSError as e:
            raise annotate_restore_error(
                CheckpointIntegrityError(
                    f"delta chain broken: parent generation "
                    f"{current} unreadable: {e}",
                    section="header",
                ),
                path,
            ) from e
    chain.reverse()
    try:
        merged = merge_delta_chain(chain, raw_arrays=raw_arrays)
    except CheckpointIntegrityError as e:
        INTEGRITY.integrity_failures += 1
        raise annotate_restore_error(e, path) from e
    merged._sources = sources
    return merged


def restart_vm(
    platform: Platform,
    code: CodeImage,
    path: str,
    config: Optional[VMConfig] = None,
    stdout: Optional[BinaryIO] = None,
    stdin: Optional[BinaryIO] = None,
) -> tuple[VirtualMachine, RestartStats]:
    """Restore a VM on ``platform`` from the checkpoint at ``path``.

    ``code`` must be the same program image the checkpoint was taken
    from (verified by digest).  Returns the VM, ready for ``run()`` to
    continue from the checkpointed safe point.

    A failed restore raises :class:`~repro.errors.RestartError` carrying
    the checkpoint path and its detected format version.
    """
    try:
        vm, stats = _restart_vm(platform, code, path, config, stdout, stdin)
    except RestartError as e:
        raise annotate_restore_error(e, path) from e
    stats.restored_path = path
    return vm, stats


def restart_vm_with_fallback(
    platform: Platform,
    code: CodeImage,
    path: str,
    config: Optional[VMConfig] = None,
    stdout: Optional[BinaryIO] = None,
    stdin: Optional[BinaryIO] = None,
) -> tuple[VirtualMachine, RestartStats]:
    """Restore from ``path``, degrading gracefully along its generations.

    First resolves any commit a crash interrupted
    (:func:`~repro.checkpoint.commit.recover_commit` rolls a complete
    temp file forward, a torn one back), then tries ``path``,
    ``path.1``, ``path.2``, ... in order, skipping generations that fail
    verification or restore.  A restore that succeeds anywhere past the
    head counts as a ``fallback_restore`` in the integrity metrics and
    records which file won in ``stats.restored_path``.

    Raises :class:`~repro.errors.RestartError` naming every generation
    tried (with each one's failure) only when the whole chain is
    exhausted.
    """
    recover_commit(path)
    chain = generation_chain(path)
    if not chain:
        raise RestartError(f"no checkpoint generations exist at {path}")
    failures: list[str] = []
    failed_links: list[dict] = []
    first_error: Optional[RestartError] = None
    for candidate in chain:
        try:
            vm, stats = restart_vm(
                platform, code, candidate, config, stdout, stdin
            )
        except RestartError as e:
            failures.append(f"{candidate}: {e}")
            failed_links.append(
                {
                    "path": candidate,
                    "error_type": type(e).__name__,
                    "error": str(e),
                    "format_version": getattr(e, "format_version", None),
                    "section": getattr(e, "section", None),
                }
            )
            if first_error is None:
                first_error = e
            continue
        if failures:
            INTEGRITY.fallback_restores += 1
            # Leave the diagnosis where an operator can find it after
            # the fact: a degraded restore that "just worked" is a
            # checkpoint file (or chain link) silently rotting.
            INTEGRITY.last_fallback = {
                "requested": path,
                "restored": candidate,
                "generations_skipped": len(failed_links),
                "failures": list(failed_links),
            }
            stats.fallback_failures = failed_links
        return vm, stats
    if len(chain) == 1:
        # Nothing to fall back to: surface the head's own (typed,
        # annotated) error rather than wrapping it.
        raise first_error
    raise RestartError(
        "all %d checkpoint generation(s) failed to restore:\n  %s"
        % (len(chain), "\n  ".join(failures))
    ) from first_error


def _restart_vm(
    platform: Platform,
    code: CodeImage,
    path: str,
    config: Optional[VMConfig],
    stdout: Optional[BinaryIO],
    stdin: Optional[BinaryIO],
) -> tuple[VirtualMachine, RestartStats]:
    stats = RestartStats()
    timer = stats.phases
    vectorize = config.vectorize if config is not None else True
    # Lazy first-touch restore rides the staged numpy arrays, so it
    # requires the vectorized path; the scalar reference stays eager.
    lazy = bool(config.lazy_restore) if config is not None else False
    lazy = lazy and vectorize
    # Steps 1-4: read and validate (reconstructing through a v4 delta
    # chain when the head is incremental).  Under lazy restore the
    # links open deferred: roots/threads/registers come from
    # eagerly-resolved sections while heap payload bytes stay on disk
    # behind chunk slices until their first-touch thunks fire.
    with timer.phase("read_file"):
        snap = load_snapshot_chain(path, raw_arrays=vectorize, defer=lazy)
    sources = getattr(snap, "_sources", []) if lazy else []
    if snap.header.code_digest != code.digest():
        raise RestartError(
            "checkpoint was taken from a different program (digest mismatch)"
        )
    converter = ValueConverter(snap.arch, platform.arch)
    stats.converted_endianness = converter.endian_differs
    stats.converted_word_size = converter.word_size_differs
    stats.heap_words = sum(len(ws) for _, ws in snap.heap_chunks)

    vm = VirtualMachine(platform, code, config=config, stdout=stdout, stdin=stdin)
    # The collector must not run while memory is inconsistent (§3.2.2).
    vm.gc.disabled = True
    try:
        _fresh_heap(vm)
        relocation: Optional[dict[int, int]] = None
        rebuild_ctx = None
        positions: Optional[list[np.ndarray]] = None
        if converter.word_size_differs:
            with timer.phase("heap_rebuild"):
                if vectorize:
                    positions = _chunk_positions(snap, timer)
                    rebuild_ctx = _rebuild_heap_vec(
                        vm, snap, converter, positions, timer, defer=lazy
                    )
                    relocation = rebuild_ctx.relocation
                else:
                    relocation = _rebuild_heap(vm, snap, converter)
        else:
            with timer.phase("heap_restore"):
                if vectorize:
                    positions = _chunk_positions(snap, timer)
                    _restore_heap_chunks_vec(vm, snap, positions)
                else:
                    _restore_heap_chunks(vm, snap)
        # Threads and their stacks must exist before the mapper so stack
        # addresses resolve (step 8 before 9, safely: no thread runs yet).
        with timer.phase("threads"):
            _restore_threads_raw(vm, snap)
        mapper = AddressMapper(snap, vm, relocation)
        fix = _value_fixer(vm, mapper, converter)
        if converter.word_size_differs:
            with timer.phase("pointer_fix"):
                if vectorize:
                    if lazy:
                        _attach_rebuild_thunks(
                            vm, rebuild_ctx, mapper, converter, stats,
                            sources,
                        )
                    else:
                        _fix_rebuilt_heap_vec(
                            vm, rebuild_ctx, mapper, converter
                        )
                else:
                    _fix_rebuilt_heap(vm, snap, relocation, fix, converter)
                    vm.mem.heap.rebuild_freelist()
        else:
            if lazy:
                # Defer pointer fixing and payload repacking per chunk:
                # the thunks run the same kernels the eager branch below
                # runs, restricted to one chunk, on first touch.
                with timer.phase("pointer_fix"):
                    _attach_chunk_thunks(
                        vm, mapper, converter, positions, stats, sources
                    )
            else:
                with timer.phase("pointer_fix"):
                    if vectorize:
                        _fix_heap_pointers_vec(vm, mapper, positions, timer)
                    else:
                        _fix_heap_pointers(vm, mapper)
                if converter.endian_differs:
                    with timer.phase("convert_payloads"):
                        if vectorize:
                            _repack_heap_payloads_vec(vm, converter, positions)
                        else:
                            _repack_heap_payloads(vm, converter)
            with timer.phase("freelist"):
                head = snap.freelist_head
                vm.mem.heap.freelist_head = (
                    mapper.map(head) or 0 if head else 0
                )
        with timer.phase("globals"):
            gd = mapper.map(snap.global_data)
            if gd is None:
                raise RestartError("global_data pointer does not map")
            vm.global_data = gd
            _restore_cglobals(vm, snap, fix, converter)
        with timer.phase("stack_restore"):
            _fix_threads(vm, snap, mapper, fix, converter, vectorize)
        with timer.phase("registers"):
            _restore_current(vm, snap, mapper)
        with timer.phase("channels"):
            vm.channels.restore(snap.channels)
        stats.dangling_pointers = mapper.dangling_pointers
    finally:
        vm.gc.disabled = False
    vm.restarted = True
    vm.mem.heap.allocated_words = 0
    if snap.header.multithreaded:
        vm.sched.ever_multithreaded = True
    if lazy:
        RESTART.lazy_restores += 1
        for src in sources:
            rep = src.stats()
            stats.sections_deferred += rep["unresolved"] or 0
            stats.bytes_verified += rep["bytes_verified"]
            stats.bytes_deferred += rep["bytes_deferred"]
        RESTART.sections_deferred += stats.sections_deferred
        RESTART.bytes_deferred += stats.bytes_deferred
    return vm, stats


# ---------------------------------------------------------------------------
# Heap restoration
# ---------------------------------------------------------------------------


def _fresh_heap(vm: VirtualMachine) -> None:
    """Discard the fresh VM's bootstrap heap entirely."""
    for chunk in list(vm.mem.heap.chunks):
        vm.mem.space.unmap(chunk.area)
    layout = vm.platform.layout
    vm.mem.heap = Heap(
        vm.mem.space,
        vm.platform.arch,
        layout.heap_base,
        layout.chunk_stride,
        chunk_words=vm.mem.heap.chunk_words,
    )


def _restore_heap_chunks(vm: VirtualMachine, snap: VMSnapshot) -> None:
    """Same-word-size path: re-instantiate chunks with the saved image.

    The block layout — including BLUE free blocks and the freelist links
    threaded through them — is preserved verbatim, which is why the
    paper can dump chunks raw (step 8) and still find the freelist after
    restart.
    """
    layout = vm.platform.layout
    arch = vm.platform.arch
    for slot, (src_base, words) in enumerate(snap.heap_chunks):
        base = layout.heap_base + slot * layout.chunk_stride
        if len(words) * arch.word_bytes > layout.chunk_stride:
            raise RestartError("checkpointed chunk exceeds platform stride")
        area = MemoryArea(
            AreaKind.HEAP_CHUNK, base, len(words), arch,
            label=f"heap-chunk-{slot}",
        )
        area.words = list(words)
        vm.mem.heap.adopt_chunk(area)


def _fix_heap_pointers(vm: VirtualMachine, mapper: AddressMapper) -> None:
    """Paper Figure 7: walk every chunk, fix pointers in scannable
    blocks, and fix freelist links in BLUE blocks.

    Also normalizes mid-cycle GC colors (GRAY/BLACK -> WHITE): the
    interrupted incremental major cycle is abandoned and will simply
    restart from its beginning — safe, because marking starts from roots.
    """
    mem = vm.mem
    headers = mem.headers
    values = mem.values
    wb = mem.arch.word_bytes
    for chunk in mem.heap.chunks:
        words = chunk.area.words
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = headers.size(hd)
            color = headers.color(hd)
            tag = headers.tag(hd)
            if color is Color.BLUE:
                if size >= 1:
                    link = words[i + 1]
                    if link:
                        words[i + 1] = mapper.map(link) or 0
            else:
                if color in (Color.GRAY, Color.BLACK):
                    words[i] = headers.with_color(hd, Color.WHITE)
                if tag < 251:  # No_scan_tag
                    for j in range(i + 1, i + 1 + size):
                        w = words[j]
                        if values.is_block(w):
                            mapped = mapper.map(w)
                            if mapped is not None:
                                words[j] = mapped
            i += 1 + size


def _repack_heap_payloads(vm: VirtualMachine, converter: ValueConverter) -> None:
    """Endianness-only conversion of byte-oriented payloads.

    The tag field of each header is what makes this possible: strings
    keep their byte order (word values swap), doubles are re-encoded as
    8-byte IEEE units.
    """
    mem = vm.mem
    headers = mem.headers
    for chunk in mem.heap.chunks:
        words = chunk.area.words
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = headers.size(hd)
            if headers.color(hd) is not Color.BLUE:
                tag = headers.tag(hd)
                if tag == STRING_TAG:
                    words[i + 1 : i + 1 + size] = converter.repack_string(
                        words[i + 1 : i + 1 + size]
                    )
                elif tag == DOUBLE_TAG:
                    words[i + 1 : i + 1 + size] = converter.repack_double(
                        words[i + 1 : i + 1 + size]
                    )
            i += 1 + size


def _rebuild_heap(
    vm: VirtualMachine, snap: VMSnapshot, converter: ValueConverter
) -> dict[int, int]:
    """Cross-word-size path: re-encode every non-free block.

    Strings and doubles change their word counts, so block addresses
    shift — a full relocation table (old block pointer -> new block
    pointer) is built for the pointer-fixing pass.  Free (BLUE) blocks
    are dropped; the target allocator lays the heap out afresh.
    """
    src_arch = snap.arch
    src_headers = HeaderCodec(src_arch)
    src_wb = src_arch.word_bytes
    relocation: dict[int, int] = {}
    heap = vm.mem.heap
    for src_base, words in snap.heap_chunks:
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = src_headers.size(hd)
            color = src_headers.color(hd)
            tag = src_headers.tag(hd)
            src_block = src_base + (i + 1) * src_wb
            if color is not Color.BLUE and size > 0:
                payload = words[i + 1 : i + 1 + size]
                if tag == STRING_TAG:
                    new_payload = converter.repack_string(payload)
                elif tag == DOUBLE_TAG:
                    new_payload = converter.repack_double(payload)
                elif tag >= 251:  # opaque no-scan data
                    new_payload = converter.convert_raw_many(payload)
                else:
                    # Scannable: copy raw now, fix in the second pass.
                    new_payload = list(payload)
                block = heap.alloc(len(new_payload), tag, Color.WHITE)
                for j, w in enumerate(new_payload):
                    heap.set_field(block, j, w)
                relocation[src_block] = block
            i += 1 + size
    return relocation


def _fix_rebuilt_heap(
    vm: VirtualMachine,
    snap: VMSnapshot,
    relocation: dict[int, int],
    fix,
    converter: ValueConverter,
) -> None:
    """Second pass over rebuilt scannable blocks: convert every field."""
    mem = vm.mem
    headers = mem.headers
    for block in relocation.values():
        hd = mem.header_of(block)
        if headers.tag(hd) < 251:
            size = headers.size(hd)
            for j in range(size):
                mem.heap.set_field(block, j, fix(mem.heap.field(block, j)))


# ---------------------------------------------------------------------------
# Vectorized heap restoration (the numpy fast path)
# ---------------------------------------------------------------------------


def _ragged_indices(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat indices of the runs ``[starts[k], starts[k] + lens[k])``.

    The standard repeat/cumsum trick; every ``lens[k]`` must be > 0.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    cum = np.cumsum(lens)
    steps[0] = starts[0]
    if starts.size > 1:
        steps[cum[:-1]] = starts[1:] - (starts[:-1] + lens[:-1] - 1)
    return np.cumsum(steps)


def _gather_words(ws, idx: np.ndarray) -> np.ndarray:
    """The words of one saved chunk at ``idx``.

    A deferred :class:`~repro.checkpoint.schema.ChunkSlice` reads only
    the coalesced byte runs covering ``idx``; in-memory arrays gather
    directly.  Either way the result is canonical ``uint64``.
    """
    if isinstance(ws, np.ndarray):
        return ws[idx]
    return ws.gather(idx)


def _chunk_positions(snap: VMSnapshot, timer: PhaseTimer) -> list[np.ndarray]:
    """Block-header word positions of every saved chunk.

    Format-v2 files with an index answer this directly; otherwise (v1
    files, or a scalar writer that omitted the index) one word-at-a-time
    discovery walk over the saved image recovers the positions.
    """
    if snap.chunk_index is not None:
        return [pos for pos, _ in snap.chunk_index]
    src_headers = HeaderCodec(snap.arch)
    out = []
    with timer.kernel("discover_blocks"):
        for _, words in snap.heap_chunks:
            # Index-less files force a full walk; a deferred chunk
            # slice materializes here (its laziness only pays off when
            # the index says where the headers are).
            words = np.asarray(words)
            pos = []
            i = 0
            n = len(words)
            while i < n:
                pos.append(i)
                i += 1 + src_headers.size(int(words[i]))
            out.append(np.asarray(pos, dtype=np.uint32))
    return out


def _restore_heap_chunks_vec(
    vm: VirtualMachine, snap: VMSnapshot, positions: list[np.ndarray]
) -> None:
    """Same-word-size path, staged: adopt chunks backed by numpy arrays.

    The word lists materialize lazily (first GC or interpreter access);
    the pointer-fixing kernels below operate on the staged arrays
    directly, so a restart never unboxes words it does not touch.
    """
    layout = vm.platform.layout
    arch = vm.platform.arch
    for slot, ((_src_base, arr), pos) in enumerate(
        zip(snap.heap_chunks, positions)
    ):
        if arr.size * arch.word_bytes > layout.chunk_stride:
            raise RestartError("checkpointed chunk exceeds platform stride")
        base = layout.heap_base + slot * layout.chunk_stride
        area = MemoryArea.from_staged(
            AreaKind.HEAP_CHUNK, base, arr, arch, label=f"heap-chunk-{slot}"
        )
        hm = np.zeros(arr.size, dtype=np.uint8)
        hm[pos.astype(np.int64)] = 1
        vm.mem.heap.adopt_chunk(area, header_map=bytearray(hm.tobytes()))


def _fix_chunk_pointers_vec(
    arr: np.ndarray,
    pos: np.ndarray,
    mapper: AddressMapper,
    timer: Optional[PhaseTimer] = None,
) -> None:
    """Pointer fixing for one staged chunk (same-word-size restores).

    The single kernel both the eager pass and the lazy first-touch
    thunks run — sharing it is what makes lazy == eager bit-identical.
    """
    p = pos.astype(np.int64)
    hds = arr[p]
    sizes = (hds >> np.uint64(10)).astype(np.int64)
    colors = (hds >> np.uint64(8)) & np.uint64(3)
    tags = hds & np.uint64(0xFF)
    blue = colors == Color.BLUE.value
    recolor = (colors == Color.GRAY.value) | (
        colors == Color.BLACK.value
    )
    if recolor.any():
        arr[p[recolor]] = hds[recolor] & ~np.uint64(0x300)
    linked = blue & (sizes >= 1)
    if linked.any():
        lp = p[linked] + 1
        links = arr[lp]
        nz = links != 0
        if nz.any():
            with _maybe_kernel(timer, "map_many"):
                mapped, ok = mapper.map_many(links[nz])
            arr[lp[nz]] = np.where(ok, mapped, np.uint64(0))
    scan = (~blue) & (tags < np.uint64(NO_SCAN_TAG)) & (sizes > 0)
    if scan.any():
        idx = _ragged_indices(p[scan] + 1, sizes[scan])
        vals = arr[idx]
        even = (vals & np.uint64(1)) == 0
        if even.any():
            ptrs = vals[even]
            with _maybe_kernel(timer, "map_many"):
                mapped, ok = mapper.map_many(ptrs)
            arr[idx[even]] = np.where(ok, mapped, ptrs)


def _maybe_kernel(timer: Optional[PhaseTimer], name: str):
    """``timer.kernel(name)`` or a no-op when no timer is in scope.

    Lazy thunks run after the restart's phase timer has been reported,
    so their kernels are accounted in ``RestartStats.lazy_seconds``
    instead.
    """
    if timer is not None:
        return timer.kernel(name)
    import contextlib

    return contextlib.nullcontext()


def _fix_heap_pointers_vec(
    vm: VirtualMachine,
    mapper: AddressMapper,
    positions: list[np.ndarray],
    timer: PhaseTimer,
) -> None:
    """Vectorized :func:`_fix_heap_pointers`: classify every payload word
    of every scannable block by its LSB and map the pointers in bulk."""
    for chunk, pos in zip(vm.mem.heap.chunks, positions):
        _fix_chunk_pointers_vec(chunk.area.peek_staged(), pos, mapper, timer)


def _repack_chunk_payloads_vec(
    arr: np.ndarray, pos: np.ndarray, converter: ValueConverter
) -> None:
    """Endianness payload repack for one staged chunk (shared kernel)."""
    p = pos.astype(np.int64)
    hds = arr[p]
    sizes = (hds >> np.uint64(10)).astype(np.int64)
    colors = (hds >> np.uint64(8)) & np.uint64(3)
    tags = hds & np.uint64(0xFF)
    nonblue = colors != Color.BLUE.value
    strs = nonblue & (tags == np.uint64(STRING_TAG)) & (sizes > 0)
    if strs.any():
        idx = _ragged_indices(p[strs] + 1, sizes[strs])
        arr[idx] = converter.repack_string_array(arr[idx])
    dbls = nonblue & (tags == np.uint64(DOUBLE_TAG)) & (sizes > 0)
    if dbls.any():
        idx = _ragged_indices(p[dbls] + 1, sizes[dbls])
        arr[idx] = converter.repack_double_array(arr[idx])


def _repack_heap_payloads_vec(
    vm: VirtualMachine,
    converter: ValueConverter,
    positions: list[np.ndarray],
) -> None:
    """Vectorized :func:`_repack_heap_payloads` (endianness-only)."""
    for chunk, pos in zip(vm.mem.heap.chunks, positions):
        _repack_chunk_payloads_vec(chunk.area.peek_staged(), pos, converter)


# ---------------------------------------------------------------------------
# Lazy first-touch restore
# ---------------------------------------------------------------------------


class LazyRestoreState:
    """Tracks deferred heap conversion after a ``--lazy-restore`` restart.

    Installed on ``vm.lazy_restore`` by the attach functions below.
    Each staged heap chunk carries a first-touch thunk (see
    :meth:`MemoryArea.ensure_converted`); this object additionally lets
    the interpreter drain one chunk per scheduler tick in the
    background (:meth:`drain_one`) and lets the checkpoint writer force
    full conversion before dumping (:meth:`finish`), so a checkpoint
    taken mid-lazy-restore commits bit-identically to an eager one.

    The :class:`AddressMapper` is captured for the thunks' lifetime —
    safe because it is content-independent and time-invariant: heap
    relocation is a static dict, stacks are high-anchored (growth never
    moves the high end the mapper compares against), and the code /
    atoms / C-globals boundaries never move after restart.
    """

    def __init__(
        self,
        stats: RestartStats,
        mapper: AddressMapper,
        sources: Optional[list] = None,
    ) -> None:
        self.stats = stats
        self.mapper = mapper
        self._pending: deque = deque()
        #: Deferred :class:`SnapshotSource` objects whose section
        #: verification (CRCs, whole-body SHA-256, end CRC) is still
        #: incomplete; the drain finishes them after the last chunk.
        self.sources: list = list(sources) if sources else []
        stats.lazy = True

    def register(self, area: MemoryArea) -> None:
        """Track one staged area whose thunk has just been attached."""
        self._pending.append(area)
        self.stats.lazy_chunks_total += 1

    def wrap(self, convert, label: str):
        """Build the thunk: run ``convert``, account time, type errors.

        Conversion failures surface as :class:`CheckpointIntegrityError`
        even when the thunk fires arbitrarily late — a corrupt chunk
        must not escape as a random numpy/index crash mid-execution.
        """

        def thunk(arr) -> None:
            t0 = time.perf_counter()
            try:
                convert(arr)
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointIntegrityError(
                    f"lazy conversion of {label} failed: {exc}",
                    section="heap",
                ) from exc
            self._note(time.perf_counter() - t0)

        return thunk

    def _note(self, dt: float) -> None:
        st = self.stats
        st.lazy_chunks_converted += 1
        st.lazy_seconds += dt
        st.dangling_pointers = self.mapper.dangling_pointers

    @property
    def pending(self) -> int:
        """Number of chunks still awaiting conversion."""
        return sum(1 for a in self._pending if a.pending_conversion)

    def drain_one(self) -> bool:
        """Do one unit of deferred work; False when none remains.

        Chunks convert first (skipping any already faulted in by first
        touch, so the background drainer and the demand path never
        double-convert); once the last chunk is done, each deferred
        snapshot source finishes its integrity verification — reading
        whatever sections were never touched, completing the whole-body
        SHA-256 and the end-of-file CRC.
        """
        while self._pending:
            area = self._pending[0]
            if not area.pending_conversion:
                self._pending.popleft()
                continue
            area.ensure_converted()
            return True
        return self._verify_step()

    def _verify_step(self) -> bool:
        """Finish one source's deferred verification; False if all done.

        A corruption surfacing here — arbitrarily long after restart —
        raises the same typed, annotated
        :class:`~repro.errors.CheckpointIntegrityError` an eager restore
        raises up front.
        """
        for src in self.sources:
            if src.fully_verified:
                continue
            t0 = time.perf_counter()
            try:
                src.finish_verification()
            except CheckpointFormatError as e:
                INTEGRITY.integrity_failures += 1
                RESTART.late_failures += 1
                if src.path is not None:
                    raise annotate_restore_error(e, src.path) from e
                raise
            self.stats.lazy_seconds += time.perf_counter() - t0
            RESTART.late_verifications += 1
            src._release_backing()
            return True
        return False

    def finish(self) -> None:
        """Convert every remaining chunk and finish deferred section
        verification (checkpoint writer barrier)."""
        while self.drain_one():
            pass


def _attach_chunk_thunks(
    vm: VirtualMachine,
    mapper: AddressMapper,
    converter: ValueConverter,
    positions: list[np.ndarray],
    stats: RestartStats,
    sources: Optional[list] = None,
) -> None:
    """Same-word-size lazy restore: defer pointer fixing (and, across
    endiannesses, payload repacking) per chunk to first touch.

    Each thunk runs exactly the kernels the eager pass runs, restricted
    to its own chunk — per-chunk work is independent, so the result is
    bit-identical to an eager restore regardless of touch order.
    """
    state = LazyRestoreState(stats, mapper, sources)
    endian = converter.endian_differs
    for chunk, pos in zip(vm.mem.heap.chunks, positions):
        area = chunk.area

        def convert(arr, pos=pos):
            _fix_chunk_pointers_vec(arr, pos, mapper)
            if endian:
                _repack_chunk_payloads_vec(arr, pos, converter)

        area.defer_conversion(state.wrap(convert, area.label))
        state.register(area)
    vm.lazy_restore = state


def _attach_rebuild_thunks(
    vm: VirtualMachine,
    ctx: "_RebuildContext",
    mapper: AddressMapper,
    converter: ValueConverter,
    stats: RestartStats,
    sources: Optional[list] = None,
) -> None:
    """Cross-word-size lazy restore: defer pass C payload filling and
    the field fix-up per rebuilt chunk.

    Headers, placement, the freelist and the relocation table were all
    built eagerly (they are O(#blocks) and other subsystems read them
    pre-conversion); a thunk only fills and fixes the payload words of
    the blocks placed in its own chunk.
    """
    heap = vm.mem.heap
    state = LazyRestoreState(stats, mapper, sources)
    for d in range(len(ctx.dst_bases)):
        area = heap.chunks[ctx.chunk_offset + d].area

        def convert(arr, d=d):
            _fill_rebuilt_payloads(
                ctx.per_chunk,
                ctx.all_dst,
                ctx.block_dchunk,
                ctx.dst_arrs,
                ctx.dst_bases,
                ctx.dst_wb,
                converter,
                only_chunk=d,
            )
            _fix_rebuilt_heap_vec(vm, ctx, mapper, converter, only_chunk=d)

        area.defer_conversion(state.wrap(convert, area.label))
        state.register(area)
    vm.lazy_restore = state


@dataclass
class _RebuildContext:
    """What the cross-word-size rebuild hands to its fix-up pass."""

    relocation: dict[int, int]
    #: Scannable rebuilt blocks: dst block addresses and payload sizes.
    scan_addrs: np.ndarray
    scan_sizes: np.ndarray
    #: Geometry of the rebuilt chunks, frozen at rebuild time.  Lazily
    #: deferred fix-ups can run after ``alloc`` has appended fresh
    #: chunks to ``heap.chunks``, so the pass must never re-derive
    #: these from the live heap.
    dst_bases: np.ndarray = None
    chunk_offset: int = 0
    dst_wb: int = 0
    #: Deferred payload state (``--lazy-restore`` only): the classified
    #: source blocks and target arrays that pass C would have filled
    #: eagerly.  ``None`` after an eager rebuild.
    per_chunk: Optional[list] = None
    all_dst: Optional[np.ndarray] = None
    block_dchunk: Optional[np.ndarray] = None
    dst_arrs: Optional[list] = None


def _rebuild_heap_vec(
    vm: VirtualMachine,
    snap: VMSnapshot,
    converter: ValueConverter,
    positions: list[np.ndarray],
    timer: PhaseTimer,
    defer: bool = False,
) -> _RebuildContext:
    """Vectorized :func:`_rebuild_heap`.

    Replicates the scalar path bit for bit: block *placement* replays
    the first-fit allocator against a lightweight freelist model (same
    carve rules, same chunk-growth points), while the payload copies and
    conversions run as bulk numpy gathers/scatters grouped by the block
    classes the v2 index records.
    """
    src_arch = snap.arch
    src_wb = src_arch.word_bytes
    dst_arch = vm.platform.arch
    dst_wb = dst_arch.word_bytes
    heap = vm.mem.heap

    # -- pass A: per-chunk live-block metadata -----------------------------
    per_chunk = []
    str_shift = np.uint64(
        8 * (src_wb - 1)
        if src_arch.endianness is Endianness.LITTLE
        else 0
    )
    with timer.kernel("classify"):
        for (src_base, arr), pos in zip(snap.heap_chunks, positions):
            p = pos.astype(np.int64)
            hds = _gather_words(arr, p)
            sizes = (hds >> np.uint64(10)).astype(np.int64)
            colors = (hds >> np.uint64(8)) & np.uint64(3)
            tags = (hds & np.uint64(0xFF)).astype(np.int64)
            live = (colors != Color.BLUE.value) & (sizes > 0)
            lp = p[live]
            lsz = sizes[live]
            ltag = tags[live]
            nsz = lsz.copy()
            is_str = ltag == STRING_TAG
            if is_str.any():
                last = _gather_words(arr, lp[is_str] + lsz[is_str])
                pad = ((last >> str_shift) & np.uint64(0xFF)).astype(np.int64)
                blen = lsz[is_str] * src_wb - 1 - pad
                nsz[is_str] = blen // dst_wb + 1
            is_dbl = ltag == DOUBLE_TAG
            if is_dbl.any():
                nsz[is_dbl] = lsz[is_dbl] * src_wb // dst_wb
            src_blocks = (
                np.uint64(src_base) + (lp + 1).astype(np.uint64) * np.uint64(src_wb)
            )
            per_chunk.append((arr, lp, lsz, ltag, nsz, src_blocks))

    all_nsz = (
        np.concatenate([m[4] for m in per_chunk])
        if per_chunk
        else np.empty(0, dtype=np.int64)
    )
    all_tags = (
        np.concatenate([m[3] for m in per_chunk])
        if per_chunk
        else np.empty(0, dtype=np.int64)
    )
    all_src = (
        np.concatenate([m[5] for m in per_chunk])
        if per_chunk
        else np.empty(0, dtype=np.uint64)
    )

    # -- pass B: replay first-fit placement --------------------------------
    with timer.kernel("placement"):
        dst_blocks, chunks_out, freelist, fragments = _simulate_first_fit(
            heap, all_nsz.tolist(), dst_wb
        )
    all_dst = np.asarray(dst_blocks, dtype=np.uint64)
    relocation = dict(zip(all_src.tolist(), dst_blocks))

    # -- pass C: build the target chunk images -----------------------------
    dst_arrs = [np.zeros(n_words, dtype=np.uint64) for _, n_words in chunks_out]
    dst_bases = np.asarray([b for b, _ in chunks_out], dtype=np.uint64)
    hdr_vals = (all_nsz.astype(np.uint64) << np.uint64(10)) | all_tags.astype(
        np.uint64
    )
    dchunk = (
        np.searchsorted(dst_bases, all_dst, side="right").astype(np.int64) - 1
    )
    hidx = ((all_dst - dst_bases[dchunk]) // np.uint64(dst_wb)).astype(
        np.int64
    ) - 1
    for d, dst in enumerate(dst_arrs):
        m = dchunk == d
        dst[hidx[m]] = hdr_vals[m]
    # White zero-size fragment headers encode as 0: already zeroed.
    del fragments

    # Scannable blocks keep their word count across the rebuild (only
    # strings and doubles re-pack), so the fix-up geometry falls straight
    # out of the placement data, in global block order.
    scan_mask = all_tags < NO_SCAN_TAG
    ctx = _RebuildContext(
        relocation=relocation,
        scan_addrs=all_dst[scan_mask],
        scan_sizes=all_nsz[scan_mask],
        dst_bases=dst_bases,
        chunk_offset=len(heap.chunks),
        dst_wb=dst_wb,
    )
    if defer:
        # Lazy restore: leave the payload words zeroed; the per-chunk
        # first-touch thunks run _fill_rebuilt_payloads restricted to
        # their own chunk (see _attach_rebuild_thunks).
        ctx.per_chunk = per_chunk
        ctx.all_dst = all_dst
        ctx.block_dchunk = dchunk
        ctx.dst_arrs = dst_arrs
    else:
        with timer.kernel("payloads"):
            _fill_rebuilt_payloads(
                per_chunk,
                all_dst,
                dchunk,
                dst_arrs,
                dst_bases,
                dst_wb,
                converter,
            )

    # -- pass D: freelist remnants + adoption ------------------------------
    blues = sorted(addr for addr, _size in freelist)
    size_by_addr = {addr: size for addr, size in freelist}
    for i, addr in enumerate(blues):
        d = int(np.searchsorted(dst_bases, np.uint64(addr), "right") - 1)
        off = (addr - int(dst_bases[d])) // dst_wb
        dst_arrs[d][off - 1] = np.uint64(
            (size_by_addr[addr] << 10) | (Color.BLUE.value << 8)
        )
        nxt = blues[i + 1] if i + 1 < len(blues) else 0
        dst_arrs[d][off] = np.uint64(nxt)
    for (base, n_words), dst in zip(chunks_out, dst_arrs):
        area = MemoryArea.from_staged(
            AreaKind.HEAP_CHUNK,
            base,
            dst,
            dst_arch,
            label=f"heap-chunk-{len(heap.chunks)}",
        )
        heap.adopt_chunk(area, header_map=None)
    _install_rebuilt_header_maps(
        heap, chunks_out, dchunk, hidx, freelist, dst_bases, dst_wb
    )
    heap.freelist_head = blues[0] if blues else 0
    heap.allocated_words += int((all_nsz + 1).sum())
    return ctx


def _fill_rebuilt_payloads(
    per_chunk: list,
    all_dst: np.ndarray,
    block_dchunk: np.ndarray,
    dst_arrs: list,
    dst_bases: np.ndarray,
    dst_wb: int,
    converter: ValueConverter,
    only_chunk: Optional[int] = None,
) -> None:
    """Pass C payload copies: gather each class of source block payload
    and scatter it (converted) into the rebuilt chunk images.

    ``only_chunk`` restricts the work to blocks placed in one target
    chunk — the lazy-restore thunks use this, and because every kernel
    here is per-block (raw copies, elementwise converts, per-block
    string/double repacks), the restricted runs produce bit-identical
    words to one eager full pass.
    """

    def scatter(group_dst, group_nsz, vals):
        """Scatter per-block ``vals`` runs to the target chunk arrays."""
        gchunk = (
            np.searchsorted(dst_bases, group_dst, side="right").astype(
                np.int64
            )
            - 1
        )
        val_starts = np.cumsum(group_nsz) - group_nsz
        for d, dst in enumerate(dst_arrs):
            m = gchunk == d
            if not m.any():
                continue
            off = ((group_dst[m] - dst_bases[d]) // np.uint64(dst_wb)).astype(
                np.int64
            )
            di = _ragged_indices(off, group_nsz[m])
            vi = _ragged_indices(val_starts[m], group_nsz[m])
            dst[di] = vals[vi]

    foff = 0
    for arr, lp, lsz, ltag, nsz, _src_blocks in per_chunk:
        nblocks = int(lp.size)
        dsts = all_dst[foff : foff + nblocks]
        dch = block_dchunk[foff : foff + nblocks]
        foff += nblocks
        if only_chunk is None:
            sel = np.ones(nblocks, dtype=bool)
        else:
            sel = dch == only_chunk
            if not sel.any():
                continue
        # Materialize a deferred chunk slice only once a block placed in
        # the requested target chunk actually needs its payload bytes.
        arr = np.asarray(arr)
        is_str = (ltag == STRING_TAG) & sel
        is_dbl = (ltag == DOUBLE_TAG) & sel
        is_opq = (
            (ltag >= NO_SCAN_TAG)
            & (ltag != STRING_TAG)
            & (ltag != DOUBLE_TAG)
            & sel
        )
        is_scan = (ltag < NO_SCAN_TAG) & sel
        if is_scan.any():
            vals = arr[_ragged_indices(lp[is_scan] + 1, lsz[is_scan])]
            scatter(dsts[is_scan], nsz[is_scan], vals)
        if is_opq.any():
            vals = converter.convert_raw_array(
                arr[_ragged_indices(lp[is_opq] + 1, lsz[is_opq])]
            )
            scatter(dsts[is_opq], nsz[is_opq], vals)
        if is_dbl.any():
            vals = converter.double_words_from_patterns(
                converter.double_pattern_array(
                    arr[_ragged_indices(lp[is_dbl] + 1, lsz[is_dbl])]
                )
            )
            scatter(dsts[is_dbl], nsz[is_dbl], vals)
        if is_str.any():
            # Strings change word counts irregularly; repack one by
            # one through the codecs (a small minority of the heap).
            for k in np.flatnonzero(is_str):
                payload = arr[lp[k] + 1 : lp[k] + 1 + lsz[k]].tolist()
                new = converter.repack_string(payload)
                addr = int(dsts[k])
                d = int(
                    np.searchsorted(dst_bases, np.uint64(addr), "right") - 1
                )
                off = (addr - int(dst_bases[d])) // dst_wb
                dst_arrs[d][off : off + len(new)] = np.asarray(
                    new, dtype=np.uint64
                )


def _simulate_first_fit(
    heap: Heap, sizes: list[int], dst_wb: int
) -> tuple[list[int], list[tuple[int, int]], list[list[int]], list[int]]:
    """Replay :meth:`Heap.alloc` placement without touching memory.

    Returns ``(block_addrs, chunks, freelist, fragments)`` where
    ``chunks`` is ``(base, n_words)`` per created chunk, ``freelist``
    the surviving ``[block_addr, size]`` entries and ``fragments`` the
    header addresses of zero-size white fragments.  The model mirrors
    ``_try_alloc`` exactly: first fit, tail carving, head-pushed chunks.
    """
    page_words = PAGE_SIZE // dst_wb
    chunk_words = heap.chunk_words
    heap_base = heap._heap_base
    stride = heap._chunk_stride
    slot = heap._next_chunk_slot
    freelist: list[list[int]] = []
    chunks: list[tuple[int, int]] = []
    fragments: list[int] = []
    blocks: list[int] = []

    def add_chunk(min_words: int) -> None:
        nonlocal slot
        n_words = max(chunk_words, min_words + 1)
        n_words = -(-n_words // page_words) * page_words
        if n_words * dst_wb > stride:
            raise HeapExhausted(
                f"allocation of {min_words} words exceeds the maximum chunk "
                f"size of this platform layout"
            )
        base = heap_base + slot * stride
        slot += 1
        chunks.append((base, n_words))
        freelist.insert(0, [base + dst_wb, n_words - 1])

    for wosize in sizes:
        placed = None
        while placed is None:
            for k, ent in enumerate(freelist):
                addr, size = ent
                if size == wosize:
                    freelist.pop(k)
                    placed = addr
                    break
                if size == wosize + 1:
                    freelist.pop(k)
                    fragments.append(addr - dst_wb)
                    placed = addr + dst_wb
                    break
                if size >= wosize + 2:
                    remaining = size - wosize - 1
                    ent[1] = remaining
                    placed = addr + (remaining + 1) * dst_wb
                    break
            if placed is None:
                add_chunk(wosize + 1)
        blocks.append(placed)
    return blocks, chunks, freelist, fragments


def _install_rebuilt_header_maps(
    heap: Heap,
    chunks_out: list[tuple[int, int]],
    dchunk: np.ndarray,
    hidx: np.ndarray,
    freelist: list[list[int]],
    dst_bases: np.ndarray,
    dst_wb: int,
) -> None:
    """Build each rebuilt chunk's header bitmap from the placement data.

    Word 0 of every chunk is always a header: the rebuild never frees a
    block, so every free block (and hence every fragment or blue remnant
    it turns into) keeps its header at its chunk's first word, while
    allocations carve from free-block tails (covered by ``hidx``).
    """
    maps = [np.zeros(n_words, dtype=np.uint8) for _, n_words in chunks_out]
    for d, hm in enumerate(maps):
        hm[hidx[dchunk == d]] = 1
        hm[0] = 1
    for addr, _size in freelist:
        d = int(np.searchsorted(dst_bases, np.uint64(addr), "right") - 1)
        maps[d][(addr - int(dst_bases[d])) // dst_wb - 1] = 1
    start = len(heap.chunks) - len(chunks_out)
    for i, hm in enumerate(maps):
        heap.chunks[start + i].header_map = bytearray(hm.tobytes())


def _fix_rebuilt_heap_vec(
    vm: VirtualMachine,
    ctx: _RebuildContext,
    mapper: AddressMapper,
    converter: ValueConverter,
    only_chunk: Optional[int] = None,
) -> None:
    """Vectorized :func:`_fix_rebuilt_heap`: convert every field of every
    rebuilt scannable block (immediates re-boxed, pointers remapped,
    dangling words neutralized to unit).

    Geometry comes from the rebuild context, never the live heap: a
    lazily deferred run (``only_chunk`` set, from a first-touch thunk)
    can fire after ``alloc`` has appended fresh chunks, and eager and
    lazy runs must index the same chunks to stay bit-identical.
    """
    heap = vm.mem.heap
    unit = np.uint64(vm.mem.values.val_unit)
    dst_wb = ctx.dst_wb
    dst_bases = ctx.dst_bases
    if ctx.scan_addrs.size == 0:
        return
    gchunk = (
        np.searchsorted(dst_bases, ctx.scan_addrs, side="right").astype(
            np.int64
        )
        - 1
    )
    for d in range(len(dst_bases)):
        if only_chunk is not None and d != only_chunk:
            continue
        m = gchunk == d
        if not m.any():
            continue
        arr = heap.chunks[ctx.chunk_offset + d].area.peek_staged()
        off = (
            (ctx.scan_addrs[m] - dst_bases[d]) // np.uint64(dst_wb)
        ).astype(np.int64)
        idx = _ragged_indices(off, ctx.scan_sizes[m])
        w = arr[idx]
        out = np.empty_like(w)
        odd = (w & np.uint64(1)) == 1
        if odd.any():
            out[odd] = converter.convert_immediate_array(w[odd])
        even = ~odd
        if even.any():
            ptrs = w[even]
            mapped, ok = mapper.map_many(ptrs)
            out[even] = np.where(
                ok, mapped, np.where(ptrs == 0, np.uint64(0), unit)
            )
        arr[idx] = out


# ---------------------------------------------------------------------------
# Value fixing
# ---------------------------------------------------------------------------


def _value_fixer(vm: VirtualMachine, mapper: AddressMapper, converter: ValueConverter):
    """Classify-and-fix for one word: pointer -> adjust, immediate ->
    convert (identity when architectures match)."""
    values = vm.mem.values

    def fix(w: int) -> int:
        if w & 1:
            return converter.convert_immediate(w)
        mapped = mapper.map(w)
        if mapped is not None:
            return mapped
        if w == 0:
            return 0
        # A dangling pointer (into dropped free space) or opaque even
        # word: neutralize to unit so later scans cannot fault.
        return values.val_unit if converter.word_size_differs else w

    return fix


# ---------------------------------------------------------------------------
# Threads / stacks / registers
# ---------------------------------------------------------------------------


def _restore_threads_raw(vm: VirtualMachine, snap: VMSnapshot) -> None:
    """Create every thread with its stack contents copied raw.

    No thread may run until all are restored (paper §3.2.3); nothing
    runs here at all — the interpreter resumes only after restart
    completes.
    """
    unit = vm.mem.values.val_unit
    for rec in snap.threads:
        if rec.tid == 0:
            thread = vm.sched.threads[0]
        else:
            stack = vm.sched.new_stack(f"thread-stack-{rec.tid}")
            thread = VMThread(rec.tid, stack, unit)
            vm.sched.adopt(thread)
        stack = thread.stack
        used = len(rec.stack_words)
        if used > stack.n_words:
            capacity = stack.n_words
            while capacity < used:
                capacity *= 2
            stack.replace_capacity(capacity)
        # Copy the used region under stack_high (top of stack first).
        base_index = stack.n_words - used
        ws = rec.stack_words
        if isinstance(ws, np.ndarray):
            ws = ws.tolist()
        stack.area.words[base_index : base_index + used] = ws
        stack.sp = stack.stack_high - used * vm.mem.arch.word_bytes


def _fix_threads(
    vm: VirtualMachine,
    snap: VMSnapshot,
    mapper: AddressMapper,
    fix,
    converter: ValueConverter,
    vectorize: bool = False,
) -> None:
    """Fix every thread's stack words, registers and scheduling state."""
    values = vm.mem.values
    for rec in snap.threads:
        thread = vm.sched.threads[rec.tid]
        stack = thread.stack
        first = (stack.sp - stack.area.base) // vm.mem.arch.word_bytes
        words = stack.area.words
        if vectorize:
            _fix_stack_words_vec(words, first, mapper, converter, values)
        else:
            for k in range(first, len(words)):
                words[k] = fix(words[k])
        thread.state = ThreadState(rec.state)
        thread.block_kind = BlockKind(rec.block_kind)
        if thread.block_kind is BlockKind.JOIN:
            thread.blocked_on = rec.blocked_on  # a thread id, not a value
        else:
            thread.blocked_on = fix(rec.blocked_on)
        thread.pending_mutex = fix(rec.pending_mutex)
        thread.result = fix(rec.result)
        thread.accu = fix(rec.regs.accu)
        thread.env = fix(rec.regs.env)
        thread.extra_args = rec.regs.extra_args
        if rec.regs.trapsp:
            mapped_trap = mapper.map(rec.regs.trapsp)
            if mapped_trap is None:
                raise RestartError(f"thread {rec.tid} trap pointer does not map")
            thread.trapsp = mapped_trap
        else:
            thread.trapsp = 0
        pc_addr = mapper.map(rec.regs.pc)
        if pc_addr is None:
            raise RestartError(f"thread {rec.tid} PC does not map")
        thread.pc = (pc_addr - vm.code_base) // 4


def _fix_stack_words_vec(
    words: list, first: int, mapper: AddressMapper, converter, values
) -> None:
    """Vectorized stack fix: the inner loop of :func:`_fix_threads`.

    Replicates ``_value_fixer`` element-wise: immediates are converted,
    pointers remapped, and unmapped non-null even words neutralized to
    unit on word-size-changing restarts (kept verbatim otherwise).
    """
    if first >= len(words):
        return
    arr = np.asarray(words[first:], dtype=np.uint64)
    out = np.empty_like(arr)
    odd = (arr & np.uint64(1)) == 1
    if odd.any():
        out[odd] = converter.convert_immediate_array(arr[odd])
    even = ~odd
    if even.any():
        ptrs = arr[even]
        mapped, ok = mapper.map_many(ptrs)
        if converter.word_size_differs:
            fallback = np.where(
                ptrs == 0, np.uint64(0), np.uint64(values.val_unit)
            )
        else:
            fallback = ptrs
        out[even] = np.where(ok, mapped, fallback)
    words[first:] = out.tolist()


def _restore_current(vm: VirtualMachine, snap: VMSnapshot, mapper: AddressMapper) -> None:
    """Install the checkpointed current thread into the interpreter."""
    current = vm.sched.threads.get(snap.header.current_tid)
    if current is None:
        raise RestartError("checkpoint names an unknown current thread")
    vm.sched.current = current
    vm.interp.load_from_thread(current)


# ---------------------------------------------------------------------------
# C globals
# ---------------------------------------------------------------------------


def _restore_cglobals(vm: VirtualMachine, snap: VMSnapshot, fix, converter) -> None:
    """Restore the registered C-global area (paper's "global data")."""
    cg = vm.mem.cglobals
    roots = set(snap.cglobal_roots)
    for idx, w in enumerate(snap.cglobal_words):
        if idx in roots:
            cg.area.words[idx] = fix(w)
        else:
            cg.area.words[idx] = converter.convert_raw(w)
    cg.root_indices = sorted(roots)
    cg._next = len(snap.cglobal_words)
