"""The restart mechanism (paper §4.2, Figure 7).

Steps, mapped onto this implementation:

1.  Open the checkpoint file, check the signature and CRC.
2.  Read the architecture marker: detect endianness (the saved constant
    one) and word size; set the conversion flags.  Read the application
    type and thread table.
3.  Read the original boundary addresses.
4.  Read the abstract registers (fixed up later, once the mapper
    exists).
5.  Restore the heap: same word size -> re-instantiate each chunk and
    keep the block layout (freelist included); different word size ->
    re-encode the heap block by block into a fresh heap, building a
    relocation table.
6.  Restore the atom table and VM globals, adjusting pointers.
7.  Restore the application stack, reallocating if the checkpointed
    stack is larger than the fresh one, and adjust its pointers.
8.  Restore the other threads' state and stacks.
9.  Adjust pointers in the heap, walking live blocks via the GC's block
    layout knowledge (tag-directed; strings and doubles are repacked
    rather than value-fixed).  The collector is disabled throughout
    (§3.2.2).
10. Restore channels (reopen files, seek to saved positions).
11. Close and hand the VM back, ready to continue from the safe point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import BinaryIO, Optional

from repro.arch.platforms import Platform
from repro.bytecode.image import CodeImage
from repro.checkpoint.convert import ValueConverter
from repro.checkpoint.format import VMSnapshot, read_checkpoint
from repro.checkpoint.relocate import AddressMapper
from repro.errors import RestartError
from repro.memory.blocks import (
    Color,
    DOUBLE_TAG,
    HeaderCodec,
    STRING_TAG,
)
from repro.memory.heap import Heap
from repro.memory.layout import AreaKind, MemoryArea
from repro.metrics import PhaseTimer
from repro.threads.thread import BlockKind, ThreadState, VMThread
from repro.vm import VMConfig, VirtualMachine


@dataclass
class RestartStats:
    """Timings for one restart (drives Figures 12/14)."""

    phases: PhaseTimer = field(default_factory=PhaseTimer)
    converted_endianness: bool = False
    converted_word_size: bool = False
    heap_words: int = 0
    dangling_pointers: int = 0

    @property
    def total_seconds(self) -> float:
        return self.phases.total


def restart_vm(
    platform: Platform,
    code: CodeImage,
    path: str,
    config: Optional[VMConfig] = None,
    stdout: Optional[BinaryIO] = None,
    stdin: Optional[BinaryIO] = None,
) -> tuple[VirtualMachine, RestartStats]:
    """Restore a VM on ``platform`` from the checkpoint at ``path``.

    ``code`` must be the same program image the checkpoint was taken
    from (verified by digest).  Returns the VM, ready for ``run()`` to
    continue from the checkpointed safe point.
    """
    stats = RestartStats()
    timer = stats.phases
    # Steps 1-4: read and validate.
    with timer.phase("read_file"):
        snap = read_checkpoint(path)
    if snap.header.code_digest != code.digest():
        raise RestartError(
            "checkpoint was taken from a different program (digest mismatch)"
        )
    converter = ValueConverter(snap.arch, platform.arch)
    stats.converted_endianness = converter.endian_differs
    stats.converted_word_size = converter.word_size_differs
    stats.heap_words = sum(len(ws) for _, ws in snap.heap_chunks)

    vm = VirtualMachine(platform, code, config=config, stdout=stdout, stdin=stdin)
    # The collector must not run while memory is inconsistent (§3.2.2).
    vm.gc.disabled = True
    try:
        _fresh_heap(vm)
        relocation: Optional[dict[int, int]] = None
        if converter.word_size_differs:
            with timer.phase("heap_rebuild"):
                relocation = _rebuild_heap(vm, snap, converter)
        else:
            with timer.phase("heap_restore"):
                _restore_heap_chunks(vm, snap)
        # Threads and their stacks must exist before the mapper so stack
        # addresses resolve (step 8 before 9, safely: no thread runs yet).
        with timer.phase("threads"):
            _restore_threads_raw(vm, snap)
        mapper = AddressMapper(snap, vm, relocation)
        fix = _value_fixer(vm, mapper, converter)
        if converter.word_size_differs:
            with timer.phase("pointer_fix"):
                _fix_rebuilt_heap(vm, snap, relocation, fix, converter)
                vm.mem.heap.rebuild_freelist()
        else:
            with timer.phase("pointer_fix"):
                _fix_heap_pointers(vm, mapper)
            if converter.endian_differs:
                with timer.phase("convert_payloads"):
                    _repack_heap_payloads(vm, converter)
            with timer.phase("freelist"):
                head = snap.freelist_head
                vm.mem.heap.freelist_head = (
                    mapper.map(head) or 0 if head else 0
                )
        with timer.phase("globals"):
            gd = mapper.map(snap.global_data)
            if gd is None:
                raise RestartError("global_data pointer does not map")
            vm.global_data = gd
            _restore_cglobals(vm, snap, fix, converter)
        with timer.phase("stack_restore"):
            _fix_threads(vm, snap, mapper, fix, converter)
        with timer.phase("registers"):
            _restore_current(vm, snap, mapper)
        with timer.phase("channels"):
            vm.channels.restore(snap.channels)
        stats.dangling_pointers = mapper.dangling_pointers
    finally:
        vm.gc.disabled = False
    vm.restarted = True
    vm.mem.heap.allocated_words = 0
    if snap.header.multithreaded:
        vm.sched.ever_multithreaded = True
    return vm, stats


# ---------------------------------------------------------------------------
# Heap restoration
# ---------------------------------------------------------------------------


def _fresh_heap(vm: VirtualMachine) -> None:
    """Discard the fresh VM's bootstrap heap entirely."""
    for chunk in list(vm.mem.heap.chunks):
        vm.mem.space.unmap(chunk.area)
    layout = vm.platform.layout
    vm.mem.heap = Heap(
        vm.mem.space,
        vm.platform.arch,
        layout.heap_base,
        layout.chunk_stride,
        chunk_words=vm.mem.heap.chunk_words,
    )


def _restore_heap_chunks(vm: VirtualMachine, snap: VMSnapshot) -> None:
    """Same-word-size path: re-instantiate chunks with the saved image.

    The block layout — including BLUE free blocks and the freelist links
    threaded through them — is preserved verbatim, which is why the
    paper can dump chunks raw (step 8) and still find the freelist after
    restart.
    """
    layout = vm.platform.layout
    arch = vm.platform.arch
    for slot, (src_base, words) in enumerate(snap.heap_chunks):
        base = layout.heap_base + slot * layout.chunk_stride
        if len(words) * arch.word_bytes > layout.chunk_stride:
            raise RestartError("checkpointed chunk exceeds platform stride")
        area = MemoryArea(
            AreaKind.HEAP_CHUNK, base, len(words), arch,
            label=f"heap-chunk-{slot}",
        )
        area.words = list(words)
        vm.mem.heap.adopt_chunk(area)


def _fix_heap_pointers(vm: VirtualMachine, mapper: AddressMapper) -> None:
    """Paper Figure 7: walk every chunk, fix pointers in scannable
    blocks, and fix freelist links in BLUE blocks.

    Also normalizes mid-cycle GC colors (GRAY/BLACK -> WHITE): the
    interrupted incremental major cycle is abandoned and will simply
    restart from its beginning — safe, because marking starts from roots.
    """
    mem = vm.mem
    headers = mem.headers
    values = mem.values
    wb = mem.arch.word_bytes
    for chunk in mem.heap.chunks:
        words = chunk.area.words
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = headers.size(hd)
            color = headers.color(hd)
            tag = headers.tag(hd)
            if color is Color.BLUE:
                if size >= 1:
                    link = words[i + 1]
                    if link:
                        words[i + 1] = mapper.map(link) or 0
            else:
                if color in (Color.GRAY, Color.BLACK):
                    words[i] = headers.with_color(hd, Color.WHITE)
                if tag < 251:  # No_scan_tag
                    for j in range(i + 1, i + 1 + size):
                        w = words[j]
                        if values.is_block(w):
                            mapped = mapper.map(w)
                            if mapped is not None:
                                words[j] = mapped
            i += 1 + size


def _repack_heap_payloads(vm: VirtualMachine, converter: ValueConverter) -> None:
    """Endianness-only conversion of byte-oriented payloads.

    The tag field of each header is what makes this possible: strings
    keep their byte order (word values swap), doubles are re-encoded as
    8-byte IEEE units.
    """
    mem = vm.mem
    headers = mem.headers
    for chunk in mem.heap.chunks:
        words = chunk.area.words
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = headers.size(hd)
            if headers.color(hd) is not Color.BLUE:
                tag = headers.tag(hd)
                if tag == STRING_TAG:
                    words[i + 1 : i + 1 + size] = converter.repack_string(
                        words[i + 1 : i + 1 + size]
                    )
                elif tag == DOUBLE_TAG:
                    words[i + 1 : i + 1 + size] = converter.repack_double(
                        words[i + 1 : i + 1 + size]
                    )
            i += 1 + size


def _rebuild_heap(
    vm: VirtualMachine, snap: VMSnapshot, converter: ValueConverter
) -> dict[int, int]:
    """Cross-word-size path: re-encode every non-free block.

    Strings and doubles change their word counts, so block addresses
    shift — a full relocation table (old block pointer -> new block
    pointer) is built for the pointer-fixing pass.  Free (BLUE) blocks
    are dropped; the target allocator lays the heap out afresh.
    """
    src_arch = snap.arch
    src_headers = HeaderCodec(src_arch)
    src_wb = src_arch.word_bytes
    relocation: dict[int, int] = {}
    heap = vm.mem.heap
    for src_base, words in snap.heap_chunks:
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = src_headers.size(hd)
            color = src_headers.color(hd)
            tag = src_headers.tag(hd)
            src_block = src_base + (i + 1) * src_wb
            if color is not Color.BLUE and size > 0:
                payload = words[i + 1 : i + 1 + size]
                if tag == STRING_TAG:
                    new_payload = converter.repack_string(payload)
                elif tag == DOUBLE_TAG:
                    new_payload = converter.repack_double(payload)
                elif tag >= 251:  # opaque no-scan data
                    new_payload = [converter.convert_raw(w) for w in payload]
                else:
                    # Scannable: copy raw now, fix in the second pass.
                    new_payload = list(payload)
                block = heap.alloc(len(new_payload), tag, Color.WHITE)
                for j, w in enumerate(new_payload):
                    heap.set_field(block, j, w)
                relocation[src_block] = block
            i += 1 + size
    return relocation


def _fix_rebuilt_heap(
    vm: VirtualMachine,
    snap: VMSnapshot,
    relocation: dict[int, int],
    fix,
    converter: ValueConverter,
) -> None:
    """Second pass over rebuilt scannable blocks: convert every field."""
    mem = vm.mem
    headers = mem.headers
    for block in relocation.values():
        hd = mem.header_of(block)
        if headers.tag(hd) < 251:
            size = headers.size(hd)
            for j in range(size):
                mem.heap.set_field(block, j, fix(mem.heap.field(block, j)))


# ---------------------------------------------------------------------------
# Value fixing
# ---------------------------------------------------------------------------


def _value_fixer(vm: VirtualMachine, mapper: AddressMapper, converter: ValueConverter):
    """Classify-and-fix for one word: pointer -> adjust, immediate ->
    convert (identity when architectures match)."""
    values = vm.mem.values

    def fix(w: int) -> int:
        if w & 1:
            return converter.convert_immediate(w)
        mapped = mapper.map(w)
        if mapped is not None:
            return mapped
        if w == 0:
            return 0
        # A dangling pointer (into dropped free space) or opaque even
        # word: neutralize to unit so later scans cannot fault.
        return values.val_unit if converter.word_size_differs else w

    return fix


# ---------------------------------------------------------------------------
# Threads / stacks / registers
# ---------------------------------------------------------------------------


def _restore_threads_raw(vm: VirtualMachine, snap: VMSnapshot) -> None:
    """Create every thread with its stack contents copied raw.

    No thread may run until all are restored (paper §3.2.3); nothing
    runs here at all — the interpreter resumes only after restart
    completes.
    """
    unit = vm.mem.values.val_unit
    for rec in snap.threads:
        if rec.tid == 0:
            thread = vm.sched.threads[0]
        else:
            stack = vm.sched.new_stack(f"thread-stack-{rec.tid}")
            thread = VMThread(rec.tid, stack, unit)
            vm.sched.adopt(thread)
        stack = thread.stack
        used = len(rec.stack_words)
        if used > stack.n_words:
            capacity = stack.n_words
            while capacity < used:
                capacity *= 2
            stack.replace_capacity(capacity)
        # Copy the used region under stack_high (top of stack first).
        base_index = stack.n_words - used
        for k, w in enumerate(rec.stack_words):
            stack.area.words[base_index + k] = w
        stack.sp = stack.stack_high - used * vm.mem.arch.word_bytes


def _fix_threads(
    vm: VirtualMachine,
    snap: VMSnapshot,
    mapper: AddressMapper,
    fix,
    converter: ValueConverter,
) -> None:
    """Fix every thread's stack words, registers and scheduling state."""
    values = vm.mem.values
    for rec in snap.threads:
        thread = vm.sched.threads[rec.tid]
        stack = thread.stack
        first = (stack.sp - stack.area.base) // vm.mem.arch.word_bytes
        words = stack.area.words
        for k in range(first, len(words)):
            words[k] = fix(words[k])
        thread.state = ThreadState(rec.state)
        thread.block_kind = BlockKind(rec.block_kind)
        if thread.block_kind is BlockKind.JOIN:
            thread.blocked_on = rec.blocked_on  # a thread id, not a value
        else:
            thread.blocked_on = fix(rec.blocked_on)
        thread.pending_mutex = fix(rec.pending_mutex)
        thread.result = fix(rec.result)
        thread.accu = fix(rec.regs.accu)
        thread.env = fix(rec.regs.env)
        thread.extra_args = rec.regs.extra_args
        if rec.regs.trapsp:
            mapped_trap = mapper.map(rec.regs.trapsp)
            if mapped_trap is None:
                raise RestartError(f"thread {rec.tid} trap pointer does not map")
            thread.trapsp = mapped_trap
        else:
            thread.trapsp = 0
        pc_addr = mapper.map(rec.regs.pc)
        if pc_addr is None:
            raise RestartError(f"thread {rec.tid} PC does not map")
        thread.pc = (pc_addr - vm.code_base) // 4


def _restore_current(vm: VirtualMachine, snap: VMSnapshot, mapper: AddressMapper) -> None:
    """Install the checkpointed current thread into the interpreter."""
    current = vm.sched.threads.get(snap.header.current_tid)
    if current is None:
        raise RestartError("checkpoint names an unknown current thread")
    vm.sched.current = current
    vm.interp.load_from_thread(current)


# ---------------------------------------------------------------------------
# C globals
# ---------------------------------------------------------------------------


def _restore_cglobals(vm: VirtualMachine, snap: VMSnapshot, fix, converter) -> None:
    """Restore the registered C-global area (paper's "global data")."""
    cg = vm.mem.cglobals
    roots = set(snap.cglobal_roots)
    for idx, w in enumerate(snap.cglobal_words):
        if idx in roots:
            cg.area.words[idx] = fix(w)
        else:
            cg.area.words[idx] = converter.convert_raw(w)
    cg.root_indices = sorted(roots)
    cg._next = len(snap.cglobal_words)
