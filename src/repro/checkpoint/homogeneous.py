"""Baseline: homogeneous core-dump checkpointing.

The conventional approach the paper contrasts against (§1, §5.1):
"checkpoint can simply be done by dumping the process core", relying on
identical architecture, OS *and* address-space layout at restart.  This
implementation dumps every memory area in full — free heap space, the
empty young generation, entire stack capacities — with no boundary
table, no tags consulted, no conversion support.  Restart refuses
anything but the exact same platform, and restores by plain copy (no
pointer adjustment is needed precisely because the layout must match).

Used by the A2 ablation benchmark to reproduce the paper's file-size
claim: VM-level checkpoints are smaller because they save only the
logical state.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CheckpointFormatError, IncompatibleCheckpointError
from repro.memory.layout import AreaKind, MemoryArea
from repro.threads.thread import BlockKind, ThreadState, VMThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine

_MAGIC = b"COREDUMP"


class HomogeneousCheckpointer:
    """Core-dump style save/restore for one VM."""

    def __init__(self, vm: "VirtualMachine") -> None:
        self.vm = vm

    # -- save --------------------------------------------------------------

    def save(self, path: str) -> int:
        """Dump the whole process image; returns the file size."""
        vm = self.vm
        vm.interp.save_to_thread(vm.sched.current)
        arch = vm.platform.arch
        dtype = np.dtype(arch.numpy_dtype)
        out = bytearray()
        out += _MAGIC
        name = vm.platform.name.encode()
        out += struct.pack("<I", len(name)) + name
        out += vm.code.digest()
        # Every mapped area, in full (free space included).
        areas = list(vm.mem.space.areas())
        out += struct.pack("<I", len(areas))
        for a in areas:
            label = a.label.encode()
            out += struct.pack("<I", len(label)) + label
            out += struct.pack("<QQ", a.base, a.n_words)
            arr = np.asarray(a.words, dtype=np.uint64) & np.uint64(arch.word_mask)
            out += arr.astype(dtype).tobytes()
        # The text segment too — a core dump has it all.
        code_bytes = vm.code.to_bytes()
        out += struct.pack("<I", len(code_bytes)) + code_bytes
        # Raw register/thread state (pickle-free, but layout-bound).
        out += struct.pack("<I", len(vm.sched.threads))
        for tid in sorted(vm.sched.threads):
            t = vm.sched.threads[tid]
            out += struct.pack(
                "<IQQQQqQQQ",
                t.tid,
                t.pc,
                t.accu,
                t.env,
                t.stack.sp,
                t.extra_args,
                t.blocked_on,
                t.pending_mutex,
                t.trapsp,
            )
            state = t.state.value.encode()
            out += struct.pack("<I", len(state)) + state
            kind = t.block_kind.value.encode()
            out += struct.pack("<I", len(kind)) + kind
        out += struct.pack(
            "<QQQ",
            vm.mem.heap.freelist_head,
            vm.global_data,
            vm.sched.current.tid,
        )
        # Allocator state that lives outside the memory image.
        out += struct.pack("<QQ", vm.mem.minor._next, vm.mem.cglobals._next)
        reftable = sorted(vm.mem.reftable)
        out += struct.pack("<I", len(reftable))
        for addr in reftable:
            out += struct.pack("<Q", addr)
        out += struct.pack("<I", zlib.crc32(bytes(out)) & 0xFFFFFFFF)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(out)
        os.replace(tmp, path)
        return len(out)

    # -- restore -----------------------------------------------------------------

    def restore(self, path: str) -> None:
        """Restore the dump into this VM (same platform required)."""
        vm = self.vm
        with open(path, "rb") as f:
            data = f.read()
        if data[:8] != _MAGIC:
            raise CheckpointFormatError("not a core dump")
        (crc,) = struct.unpack_from("<I", data, len(data) - 4)
        if zlib.crc32(data[:-4]) & 0xFFFFFFFF != crc:
            raise CheckpointFormatError("core dump CRC mismatch")
        off = 8
        (nlen,) = struct.unpack_from("<I", data, off)
        off += 4
        platform_name = data[off : off + nlen].decode()
        off += nlen
        if platform_name != vm.platform.name:
            raise IncompatibleCheckpointError(
                f"core dump from {platform_name!r} cannot restart on "
                f"{vm.platform.name!r}: homogeneous checkpoints are "
                f"architecture- and layout-bound"
            )
        digest = data[off : off + 32]
        off += 32
        if digest != vm.code.digest():
            raise IncompatibleCheckpointError("core dump from another program")
        arch = vm.platform.arch
        dtype = np.dtype(arch.numpy_dtype)
        (n_areas,) = struct.unpack_from("<I", data, off)
        off += 4
        by_label = {a.label: a for a in vm.mem.space.areas()}
        for _ in range(n_areas):
            (llen,) = struct.unpack_from("<I", data, off)
            off += 4
            label = data[off : off + llen].decode()
            off += llen
            base, n_words = struct.unpack_from("<QQ", data, off)
            off += 16
            raw = data[off : off + n_words * arch.word_bytes]
            off += len(raw)
            words = [int(w) for w in np.frombuffer(raw, dtype=dtype).astype(np.uint64)]
            area = by_label.get(label)
            if area is None:
                area = self._recreate_area(label, base, n_words)
            if label == "main-stack" and area.n_words != n_words:
                # The dumped stack had grown; match its capacity (the
                # high end is layout-fixed, so the base lines up again).
                vm.main_stack.replace_capacity(n_words)
                area = vm.main_stack.area
            if area.base != base or area.n_words != n_words:
                raise IncompatibleCheckpointError(
                    f"area {label!r} moved ({area.base:#x} != {base:#x}): "
                    f"core dumps require identical layout"
                )
            area.words[:] = words
        # The restored image replaced chunk contents wholesale; the
        # incrementally maintained header maps no longer describe them.
        for chunk in vm.mem.heap.chunks:
            chunk.header_map = None
        (clen,) = struct.unpack_from("<I", data, off)
        off += 4 + clen  # the text segment: verified by digest already
        (n_threads,) = struct.unpack_from("<I", data, off)
        off += 4
        for _ in range(n_threads):
            tid, pc, accu, env, sp, extra, blocked_on, pending, trapsp = (
                struct.unpack_from("<IQQQQqQQQ", data, off)
            )
            off += struct.calcsize("<IQQQQqQQQ")
            (slen,) = struct.unpack_from("<I", data, off)
            off += 4
            state = data[off : off + slen].decode()
            off += slen
            (klen,) = struct.unpack_from("<I", data, off)
            off += 4
            kind = data[off : off + klen].decode()
            off += klen
            t = vm.sched.threads.get(tid)
            if t is None:
                stack_label = f"thread-stack-{tid}"
                stack_area = next(
                    a for a in vm.mem.space.areas() if a.label == stack_label
                )
                from repro.memory.stack import VMStack

                stack = VMStack.__new__(VMStack)
                stack.space = vm.mem.space
                stack.arch = arch
                stack._wb = arch.word_bytes
                stack._wshift = arch.word_bytes.bit_length() - 1
                stack._base = stack_area.base
                stack.max_words = vm.platform.layout.thread_stride // arch.word_bytes
                stack.label = stack_label
                stack._bind_area(stack_area)
                stack.sp = sp
                stack.realloc_count = 0
                stack.on_grow = None
                t = VMThread(tid, stack, vm.mem.values.val_unit)
                vm.sched.adopt(t)
            t.pc = pc
            t.accu = accu
            t.env = env
            t.stack.sp = sp
            t.extra_args = extra
            t.blocked_on = blocked_on
            t.pending_mutex = pending
            t.trapsp = trapsp
            t.state = ThreadState(state)
            t.block_kind = BlockKind(kind)
        freelist, global_data, current_tid = struct.unpack_from("<QQQ", data, off)
        off += 24
        minor_next, cglobal_next = struct.unpack_from("<QQ", data, off)
        off += 16
        (n_refs,) = struct.unpack_from("<I", data, off)
        off += 4
        reftable = set(struct.unpack_from(f"<{n_refs}Q", data, off))
        vm.mem.heap.freelist_head = freelist
        vm.global_data = global_data
        vm.mem.minor._next = minor_next
        vm.mem.cglobals._next = cglobal_next
        vm.mem.reftable = reftable
        vm.sched.current = vm.sched.threads[current_tid]
        vm.interp.load_from_thread(vm.sched.current)
        vm.restarted = True

    def _recreate_area(self, label: str, base: int, n_words: int) -> MemoryArea:
        """Recreate a heap chunk or thread stack the fresh VM lacks."""
        vm = self.vm
        if label.startswith("heap-chunk-"):
            area = MemoryArea(
                AreaKind.HEAP_CHUNK, base, n_words, vm.platform.arch, label=label
            )
            vm.mem.heap.adopt_chunk(area)
            return area
        if label.startswith("thread-stack-"):
            area = MemoryArea(
                AreaKind.THREAD_STACK, base, n_words, vm.platform.arch, label=label
            )
            vm.mem.space.map(area)
            return area
        raise IncompatibleCheckpointError(f"unexpected area {label!r} in dump")
