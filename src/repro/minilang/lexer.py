"""MiniML lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MiniMLSyntaxError

KEYWORDS = {
    "let", "rec", "in", "if", "then", "else", "fun", "match", "with",
    "while", "do", "done", "for", "to", "downto", "begin", "end",
    "true", "false", "not", "ref", "mod", "and", "try",
}

#: Multi-character operators, longest first.
_OPERATORS = [
    "[|", "|]", "<-", ":=", "->", "::", ";;", "<=", ">=", "<>", "&&", "||",
    "+.", "-.", "*.", "/.", ".(", ".[",
    "+", "-", "*", "/", "=", "<", ">", "(", ")", "[", "]", ";", "|",
    "^", "!", ",", "_", ".",
]


class TokenKind(enum.Enum):
    """Lexical category."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    CHAR = "char"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position."""

    kind: TokenKind
    text: str
    value: object
    line: int
    col: int

    def is_kw(self, kw: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == kw

    def is_op(self, op: str) -> bool:
        return self.kind is TokenKind.OP and self.text == op


def tokenize(source: str) -> list[Token]:
    """Lex MiniML source into tokens (raises on malformed input)."""
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(source)

    def err(msg: str):
        raise MiniMLSyntaxError(f"line {line}, column {col}: {msg}")

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        # Whitespace
        if c in " \t\r\n":
            advance(1)
            continue
        # Comments (* ... *), nesting allowed
        if source.startswith("(*", i):
            depth = 1
            start_line, start_col = line, col
            advance(2)
            while i < n and depth:
                if source.startswith("(*", i):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", i):
                    depth -= 1
                    advance(2)
                else:
                    advance(1)
            if depth:
                line, col = start_line, start_col
                err("unterminated comment")
            continue
        tok_line, tok_col = line, col
        # Numbers
        if c.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_float = False
            if j < n and source[j] == "." and not source.startswith(".(", j) and not source.startswith(".[", j):
                k = j + 1
                if k >= n or not (source[k].isdigit() or source[k] in "eE"):
                    # "1." is a float literal in ML
                    is_float = True
                    j = k
                else:
                    while k < n and source[k].isdigit():
                        k += 1
                    is_float = True
                    j = k
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    while k < n and source[k].isdigit():
                        k += 1
                    is_float = True
                    j = k
            text = source[i:j]
            advance(j - i)
            if is_float:
                tokens.append(Token(TokenKind.FLOAT, text, float(text), tok_line, tok_col))
            else:
                tokens.append(Token(TokenKind.INT, text, int(text), tok_line, tok_col))
            continue
        # Strings
        if c == '"':
            j = i + 1
            out = bytearray()
            while j < n and source[j] != '"':
                ch = source[j]
                if ch == "\\":
                    j += 1
                    if j >= n:
                        err("unterminated string escape")
                    esc = source[j]
                    mapping = {"n": 10, "t": 9, "r": 13, "\\": 92, '"': 34, "'": 39, "0": 0}
                    if esc in mapping:
                        out.append(mapping[esc])
                    else:
                        err(f"unknown escape \\{esc}")
                else:
                    out.append(ord(ch))
                j += 1
            if j >= n:
                err("unterminated string literal")
            text = source[i : j + 1]
            advance(j + 1 - i)
            tokens.append(Token(TokenKind.STRING, text, bytes(out), tok_line, tok_col))
            continue
        # Character literals 'a' (also '\n')
        if c == "'":
            j = i + 1
            if j < n and source[j] == "\\" and j + 2 < n and source[j + 2] == "'":
                esc = source[j + 1]
                mapping = {"n": 10, "t": 9, "r": 13, "\\": 92, '"': 34, "'": 39, "0": 0}
                if esc not in mapping:
                    err(f"unknown escape \\{esc}")
                advance(4)
                tokens.append(Token(TokenKind.CHAR, source[i:i + 4], mapping[esc], tok_line, tok_col))
                continue
            if j + 1 < n and source[j + 1] == "'":
                value = ord(source[j])
                advance(3)
                tokens.append(Token(TokenKind.CHAR, source[i:i + 3], value, tok_line, tok_col))
                continue
            err("malformed character literal")
        # Identifiers / keywords (allow Module.name as one identifier)
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            # Dotted access like Array.make (capitalized module prefix only)
            if (
                j < n
                and source[j] == "."
                and source[i].isupper()
                and j + 1 < n
                and source[j + 1].isalpha()
            ):
                k = j + 1
                while k < n and (source[k].isalnum() or source[k] in "_'"):
                    k += 1
                j = k
            text = source[i:j]
            advance(j - i)
            if text == "_" :
                tokens.append(Token(TokenKind.OP, "_", None, tok_line, tok_col))
            elif text in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, text, None, tok_line, tok_col))
            else:
                tokens.append(Token(TokenKind.IDENT, text, None, tok_line, tok_col))
            continue
        # Operators
        for op in _OPERATORS:
            if source.startswith(op, i):
                advance(len(op))
                tokens.append(Token(TokenKind.OP, op, None, tok_line, tok_col))
                break
        else:
            err(f"unexpected character {c!r}")
    tokens.append(Token(TokenKind.EOF, "", None, line, col))
    return tokens
