"""MiniML abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class FloatLit:
    value: float


@dataclass(frozen=True)
class StringLit:
    value: bytes


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class UnitLit:
    pass


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class If:
    cond: "Expr"
    then: "Expr"
    orelse: "Expr"  # UnitLit() when omitted


@dataclass(frozen=True)
class Let:
    """``let [rec] name params = bound in body``; params empty for values."""

    name: str
    params: tuple[str, ...]
    bound: "Expr"
    body: "Expr"
    rec: bool = False


@dataclass(frozen=True)
class Fun:
    params: tuple[str, ...]
    body: "Expr"


@dataclass(frozen=True)
class Apply:
    fn: "Expr"
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class BinOp:
    """Integer/bool/string operator application, e.g. ``+``, ``<=``, ``^``."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # "-", "-.", "not", "!"
    operand: "Expr"


@dataclass(frozen=True)
class Seq:
    first: "Expr"
    second: "Expr"


@dataclass(frozen=True)
class While:
    cond: "Expr"
    body: "Expr"


@dataclass(frozen=True)
class For:
    var: str
    start: "Expr"
    stop: "Expr"
    down: bool
    body: "Expr"


@dataclass(frozen=True)
class ArrayLit:
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class ListLit:
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class Cons:
    head: "Expr"
    tail: "Expr"


@dataclass(frozen=True)
class ArrayGet:
    array: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class ArraySet:
    array: "Expr"
    index: "Expr"
    value: "Expr"


@dataclass(frozen=True)
class StringGet:
    string: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class StringSet:
    string: "Expr"
    index: "Expr"
    value: "Expr"


@dataclass(frozen=True)
class MakeRef:
    init: "Expr"


@dataclass(frozen=True)
class RefSet:
    ref: "Expr"
    value: "Expr"


# -- match patterns ---------------------------------------------------------


@dataclass(frozen=True)
class PWildcard:
    pass


@dataclass(frozen=True)
class PVar:
    name: str


@dataclass(frozen=True)
class PInt:
    value: int


@dataclass(frozen=True)
class PBool:
    value: bool


@dataclass(frozen=True)
class PString:
    value: bytes


@dataclass(frozen=True)
class PEmptyList:
    pass


@dataclass(frozen=True)
class PCons:
    head: Union[PVar, PWildcard]
    tail: Union[PVar, PWildcard]


Pattern = Union[PWildcard, PVar, PInt, PBool, PString, PEmptyList, PCons]


@dataclass(frozen=True)
class Match:
    scrutinee: "Expr"
    arms: tuple[tuple[Pattern, "Expr"], ...]


@dataclass(frozen=True)
class TryWith:
    """``try body with pat -> e | ...``; unmatched exceptions re-raise."""

    body: "Expr"
    arms: tuple[tuple[Pattern, "Expr"], ...]


Expr = Union[
    IntLit, FloatLit, StringLit, BoolLit, UnitLit, Var, If, Let, Fun,
    Apply, BinOp, UnaryOp, Seq, While, For, ArrayLit, ListLit, Cons,
    ArrayGet, ArraySet, StringGet, StringSet, MakeRef, RefSet, Match,
    TryWith,
]


# -- top-level ------------------------------------------------------------------


@dataclass(frozen=True)
class TopLet:
    """A top-level ``let [rec] name params = expr``."""

    name: str
    params: tuple[str, ...]
    bound: Expr
    rec: bool = False


@dataclass(frozen=True)
class TopExpr:
    expr: Expr


@dataclass(frozen=True)
class Program:
    items: tuple[Union[TopLet, TopExpr], ...]


# -- free variables -----------------------------------------------------------------


def free_vars(e: Expr) -> frozenset[str]:
    """Free identifiers of an expression (for closure conversion)."""
    if isinstance(e, (IntLit, FloatLit, StringLit, BoolLit, UnitLit)):
        return frozenset()
    if isinstance(e, Var):
        return frozenset([e.name])
    if isinstance(e, If):
        return free_vars(e.cond) | free_vars(e.then) | free_vars(e.orelse)
    if isinstance(e, Let):
        bound_fv = free_vars(e.bound) - frozenset(e.params)
        if e.rec:
            bound_fv -= {e.name}
        return bound_fv | (free_vars(e.body) - {e.name})
    if isinstance(e, Fun):
        return free_vars(e.body) - frozenset(e.params)
    if isinstance(e, Apply):
        out = free_vars(e.fn)
        for a in e.args:
            out |= free_vars(a)
        return out
    if isinstance(e, BinOp):
        return free_vars(e.left) | free_vars(e.right)
    if isinstance(e, UnaryOp):
        return free_vars(e.operand)
    if isinstance(e, Seq):
        return free_vars(e.first) | free_vars(e.second)
    if isinstance(e, While):
        return free_vars(e.cond) | free_vars(e.body)
    if isinstance(e, For):
        return (
            free_vars(e.start)
            | free_vars(e.stop)
            | (free_vars(e.body) - {e.var})
        )
    if isinstance(e, (ArrayLit, ListLit)):
        out: frozenset[str] = frozenset()
        for item in e.items:
            out |= free_vars(item)
        return out
    if isinstance(e, Cons):
        return free_vars(e.head) | free_vars(e.tail)
    if isinstance(e, ArrayGet):
        return free_vars(e.array) | free_vars(e.index)
    if isinstance(e, ArraySet):
        return free_vars(e.array) | free_vars(e.index) | free_vars(e.value)
    if isinstance(e, StringGet):
        return free_vars(e.string) | free_vars(e.index)
    if isinstance(e, StringSet):
        return free_vars(e.string) | free_vars(e.index) | free_vars(e.value)
    if isinstance(e, MakeRef):
        return free_vars(e.init)
    if isinstance(e, RefSet):
        return free_vars(e.ref) | free_vars(e.value)
    if isinstance(e, Match):
        return free_vars(e.scrutinee) | _arms_free_vars(e.arms)
    if isinstance(e, TryWith):
        return free_vars(e.body) | _arms_free_vars(e.arms)
    raise TypeError(f"unknown AST node {e!r}")


def _arms_free_vars(arms) -> frozenset[str]:
    out: frozenset[str] = frozenset()
    for pat, body in arms:
        bound: set[str] = set()
        if isinstance(pat, PVar):
            bound.add(pat.name)
        elif isinstance(pat, PCons):
            if isinstance(pat.head, PVar):
                bound.add(pat.head.name)
            if isinstance(pat.tail, PVar):
                bound.add(pat.tail.name)
        out |= free_vars(body) - frozenset(bound)
    return out
