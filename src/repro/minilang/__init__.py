"""MiniML: a small ML dialect compiled to the VM's byte-code.

Plays the role of the OCaml compiler in the paper's toolchain: the test
programs (matrix multiplication, the user-guide insertion sort) are
written in MiniML, compiled once, and the resulting portable code image
runs on every simulated platform.

Supported constructs: integer/float/string/bool/unit literals, ``let``
and ``let rec`` (local and top-level), curried functions with partial
application, ``if``/``then``/``else``, ``match`` over lists and integer
constants, lists (``[]``, ``::``, literals), arrays
(``Array.make``/``.(i)``/``<-``/``Array.length``), strings
(``.[i]``, ``^``), refs (``ref``/``!``/``:=``), ``while``/``for`` loops,
sequencing, and the VM primitive library (I/O, threads, channels,
``checkpoint``).
"""

from repro.minilang.lexer import tokenize, Token, TokenKind
from repro.minilang.parser import parse_program
from repro.minilang.compiler import compile_source, compile_program

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_program",
    "compile_source",
    "compile_program",
]
