"""MiniML recursive-descent parser."""

from __future__ import annotations

from repro.errors import MiniMLSyntaxError
from repro.minilang import ast_nodes as A
from repro.minilang.lexer import Token, TokenKind, tokenize


class Parser:
    """Parses a token stream into a :class:`~ast_nodes.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def err(self, msg: str) -> "MiniMLSyntaxError":
        tok = self.peek()
        return MiniMLSyntaxError(
            f"line {tok.line}, column {tok.col}: {msg} (at {tok.text!r})"
        )

    def expect_op(self, op: str) -> None:
        if not self.peek().is_op(op):
            raise self.err(f"expected {op!r}")
        self.next()

    def expect_kw(self, kw: str) -> None:
        if not self.peek().is_kw(kw):
            raise self.err(f"expected keyword {kw!r}")
        self.next()

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.next()
            return True
        return False

    def accept_kw(self, kw: str) -> bool:
        if self.peek().is_kw(kw):
            self.next()
            return True
        return False

    # -- program ------------------------------------------------------------------

    def parse_program(self) -> A.Program:
        items: list = []
        while self.accept_op(";;"):
            pass
        while self.peek().kind is not TokenKind.EOF:
            items.append(self.parse_item())
            while self.accept_op(";;"):
                pass
        return A.Program(tuple(items))

    def parse_item(self):
        if self.peek().is_kw("let"):
            save = self.pos
            self.next()
            rec = self.accept_kw("rec")
            name, params = self.parse_binding_head()
            self.expect_op("=")
            bound = self.parse_expr()
            if self.accept_kw("in"):
                body = self.parse_expr()
                return A.TopExpr(A.Let(name, params, bound, body, rec))
            if self.peek().is_kw("and"):
                raise self.err("mutually recursive 'and' bindings are not supported")
            return A.TopLet(name, params, bound, rec)
        return A.TopExpr(self.parse_expr())

    def parse_binding_head(self) -> tuple[str, tuple[str, ...]]:
        tok = self.peek()
        if tok.is_op("("):
            # `let () = ...`
            self.next()
            self.expect_op(")")
            return "_", ()
        if tok.is_op("_"):
            self.next()
            return "_", ()
        if tok.kind is not TokenKind.IDENT:
            raise self.err("expected a binding name")
        name = self.next().text
        params: list[str] = []
        while True:
            p = self.peek()
            if p.kind is TokenKind.IDENT:
                params.append(self.next().text)
            elif p.is_op("(") and self.peek(1).is_op(")"):
                self.next()
                self.next()
                params.append("_")
            elif p.is_op("_"):
                self.next()
                params.append("_")
            else:
                break
        return name, tuple(params)

    # -- expressions -------------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_seq()

    def parse_seq(self) -> A.Expr:
        e = self.parse_keyword_or_assign()
        if self.accept_op(";"):
            return A.Seq(e, self.parse_seq())
        return e

    def parse_keyword_or_assign(self) -> A.Expr:
        tok = self.peek()
        if tok.is_kw("let"):
            return self.parse_let_expr()
        if tok.is_kw("fun"):
            return self.parse_fun()
        if tok.is_kw("if"):
            return self.parse_if()
        if tok.is_kw("match"):
            return self.parse_match()
        if tok.is_kw("try"):
            return self.parse_try()
        if tok.is_kw("while"):
            return self.parse_while()
        if tok.is_kw("for"):
            return self.parse_for()
        return self.parse_assign()

    def parse_let_expr(self) -> A.Expr:
        self.expect_kw("let")
        rec = self.accept_kw("rec")
        name, params = self.parse_binding_head()
        self.expect_op("=")
        bound = self.parse_expr_nonseq()
        self.expect_kw("in")
        body = self.parse_expr()
        return A.Let(name, params, bound, body, rec)

    def parse_expr_nonseq(self) -> A.Expr:
        """An expression that stops before ``in`` — sequences allowed."""
        e = self.parse_keyword_or_assign()
        if self.accept_op(";"):
            return A.Seq(e, self.parse_expr_nonseq())
        return e

    def parse_fun(self) -> A.Expr:
        self.expect_kw("fun")
        params: list[str] = []
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.IDENT:
                params.append(self.next().text)
            elif tok.is_op("(") and self.peek(1).is_op(")"):
                self.next()
                self.next()
                params.append("_")
            elif tok.is_op("_"):
                self.next()
                params.append("_")
            else:
                break
        if not params:
            raise self.err("fun needs at least one parameter")
        self.expect_op("->")
        return A.Fun(tuple(params), self.parse_expr())

    def parse_if(self) -> A.Expr:
        self.expect_kw("if")
        cond = self.parse_expr_nonkw()
        self.expect_kw("then")
        then = self.parse_keyword_or_assign()
        if self.accept_kw("else"):
            orelse = self.parse_keyword_or_assign()
        else:
            orelse = A.UnitLit()
        return A.If(cond, then, orelse)

    def parse_expr_nonkw(self) -> A.Expr:
        """Condition position: no bare sequences."""
        return self.parse_keyword_or_assign()

    def parse_match(self) -> A.Expr:
        self.expect_kw("match")
        scrutinee = self.parse_expr_nonkw()
        self.expect_kw("with")
        self.accept_op("|")
        arms: list[tuple[A.Pattern, A.Expr]] = []
        while True:
            pat = self.parse_pattern()
            self.expect_op("->")
            body = self.parse_keyword_or_assign()
            arms.append((pat, body))
            if not self.accept_op("|"):
                break
        return A.Match(scrutinee, tuple(arms))

    def parse_try(self) -> A.Expr:
        self.expect_kw("try")
        body = self.parse_expr_nonseq()  # sequences allowed before `with`
        self.expect_kw("with")
        self.accept_op("|")
        arms: list[tuple[A.Pattern, A.Expr]] = []
        while True:
            pat = self.parse_pattern()
            self.expect_op("->")
            handler = self.parse_keyword_or_assign()
            arms.append((pat, handler))
            if not self.accept_op("|"):
                break
        return A.TryWith(body, tuple(arms))

    def parse_pattern(self) -> A.Pattern:
        tok = self.peek()
        if tok.is_op("("):
            self.next()
            pat = self.parse_pattern()
            self.expect_op(")")
            return pat
        base = self.parse_simple_pattern()
        if self.accept_op("::"):
            tail = self.parse_simple_pattern()
            if not isinstance(base, (A.PVar, A.PWildcard)):
                raise self.err("cons pattern head must be a name or _")
            if not isinstance(tail, (A.PVar, A.PWildcard)):
                raise self.err("cons pattern tail must be a name or _")
            return A.PCons(base, tail)
        return base

    def parse_simple_pattern(self) -> A.Pattern:
        tok = self.next()
        if tok.is_op("_"):
            return A.PWildcard()
        if tok.kind is TokenKind.IDENT:
            return A.PVar(tok.text)
        if tok.kind is TokenKind.INT:
            return A.PInt(tok.value)
        if tok.kind is TokenKind.CHAR:
            return A.PInt(tok.value)
        if tok.kind is TokenKind.STRING:
            return A.PString(tok.value)
        if tok.is_kw("true"):
            return A.PBool(True)
        if tok.is_kw("false"):
            return A.PBool(False)
        if tok.is_op("["):
            self.expect_op("]")
            return A.PEmptyList()
        if tok.is_op("-") and self.peek().kind is TokenKind.INT:
            return A.PInt(-self.next().value)
        raise self.err(f"unsupported pattern starting with {tok.text!r}")

    def parse_while(self) -> A.Expr:
        self.expect_kw("while")
        cond = self.parse_expr_nonkw()
        self.expect_kw("do")
        body = self.parse_expr()
        self.expect_kw("done")
        return A.While(cond, body)

    def parse_for(self) -> A.Expr:
        self.expect_kw("for")
        if self.peek().kind is not TokenKind.IDENT:
            raise self.err("expected loop variable")
        var = self.next().text
        self.expect_op("=")
        start = self.parse_expr_nonkw()
        if self.accept_kw("to"):
            down = False
        elif self.accept_kw("downto"):
            down = True
        else:
            raise self.err("expected 'to' or 'downto'")
        stop = self.parse_expr_nonkw()
        self.expect_kw("do")
        body = self.parse_expr()
        self.expect_kw("done")
        return A.For(var, start, stop, down, body)

    # -- operator precedence chain ----------------------------------------------------------

    def parse_assign(self) -> A.Expr:
        e = self.parse_or()
        if self.accept_op("<-"):
            value = self.parse_keyword_or_assign()
            if isinstance(e, A.ArrayGet):
                return A.ArraySet(e.array, e.index, value)
            if isinstance(e, A.StringGet):
                return A.StringSet(e.string, e.index, value)
            raise self.err("<- expects an array or string element on the left")
        if self.accept_op(":="):
            value = self.parse_keyword_or_assign()
            return A.RefSet(e, value)
        return e

    def parse_or(self) -> A.Expr:
        e = self.parse_and()
        while self.peek().is_op("||"):
            self.next()
            e = A.If(e, A.BoolLit(True), self.parse_and())
        return e

    def parse_and(self) -> A.Expr:
        e = self.parse_cmp()
        while self.peek().is_op("&&"):
            self.next()
            e = A.If(e, self.parse_cmp(), A.BoolLit(False))
        return e

    _CMP_OPS = ("=", "<>", "<=", ">=", "<", ">")

    def parse_cmp(self) -> A.Expr:
        e = self.parse_cons()
        tok = self.peek()
        for op in self._CMP_OPS:
            if tok.is_op(op):
                self.next()
                return A.BinOp(op, e, self.parse_cons())
        return e

    def parse_cons(self) -> A.Expr:
        e = self.parse_concat()
        if self.accept_op("::"):
            return A.Cons(e, self.parse_cons())  # right associative
        return e

    def parse_concat(self) -> A.Expr:
        e = self.parse_additive()
        if self.accept_op("^"):
            return A.BinOp("^", e, self.parse_concat())  # right associative
        return e

    _ADD_OPS = ("+.", "-.", "+", "-")
    _MUL_OPS = ("*.", "/.", "*", "/")

    def parse_additive(self) -> A.Expr:
        e = self.parse_multiplicative()
        while True:
            tok = self.peek()
            for op in self._ADD_OPS:
                if tok.is_op(op):
                    self.next()
                    e = A.BinOp(op, e, self.parse_multiplicative())
                    break
            else:
                return e

    def parse_multiplicative(self) -> A.Expr:
        e = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.is_kw("mod"):
                self.next()
                e = A.BinOp("mod", e, self.parse_unary())
                continue
            for op in self._MUL_OPS:
                if tok.is_op(op):
                    self.next()
                    e = A.BinOp(op, e, self.parse_unary())
                    break
            else:
                return e

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.is_op("-"):
            self.next()
            operand = self.parse_unary()
            if isinstance(operand, A.IntLit):
                return A.IntLit(-operand.value)
            if isinstance(operand, A.FloatLit):
                return A.FloatLit(-operand.value)
            return A.UnaryOp("-", operand)
        if tok.is_op("-."):
            self.next()
            operand = self.parse_unary()
            if isinstance(operand, A.FloatLit):
                return A.FloatLit(-operand.value)
            return A.UnaryOp("-.", operand)
        if tok.is_kw("not"):
            self.next()
            return A.UnaryOp("not", self.parse_unary())
        if tok.is_op("!"):
            self.next()
            return A.UnaryOp("!", self.parse_unary())
        return self.parse_application()

    def _starts_atom(self, tok: Token) -> bool:
        return (
            tok.kind in (TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING,
                         TokenKind.CHAR, TokenKind.IDENT)
            or tok.is_kw("true")
            or tok.is_kw("false")
            or tok.is_kw("begin")
            or tok.is_op("(")
            or tok.is_op("[")
            or tok.is_op("[|")
        )

    def parse_application(self) -> A.Expr:
        tok = self.peek()
        if tok.is_kw("ref"):
            self.next()
            return A.MakeRef(self.parse_postfix())
        head = self.parse_postfix()
        args: list[A.Expr] = []
        while self._starts_atom(self.peek()) or self.peek().is_op("!"):
            if self.peek().is_op("!"):
                self.next()
                args.append(A.UnaryOp("!", self.parse_postfix()))
            else:
                args.append(self.parse_postfix())
        if args:
            return A.Apply(head, tuple(args))
        return head

    def parse_postfix(self) -> A.Expr:
        e = self.parse_atom()
        while True:
            if self.peek().is_op(".("):
                self.next()
                index = self.parse_expr()
                self.expect_op(")")
                e = A.ArrayGet(e, index)
            elif self.peek().is_op(".["):
                self.next()
                index = self.parse_expr()
                self.expect_op("]")
                e = A.StringGet(e, index)
            else:
                return e

    def parse_atom(self) -> A.Expr:
        tok = self.next()
        if tok.kind is TokenKind.INT:
            return A.IntLit(tok.value)
        if tok.kind is TokenKind.FLOAT:
            return A.FloatLit(tok.value)
        if tok.kind is TokenKind.STRING:
            return A.StringLit(tok.value)
        if tok.kind is TokenKind.CHAR:
            return A.IntLit(tok.value)
        if tok.kind is TokenKind.IDENT:
            return A.Var(tok.text)
        if tok.is_kw("true"):
            return A.BoolLit(True)
        if tok.is_kw("false"):
            return A.BoolLit(False)
        if tok.is_kw("begin"):
            e = self.parse_expr()
            self.expect_kw("end")
            return e
        if tok.is_op("("):
            if self.accept_op(")"):
                return A.UnitLit()
            e = self.parse_expr()
            self.expect_op(")")
            return e
        if tok.is_op("["):
            if self.accept_op("]"):
                return A.ListLit(())
            items = [self.parse_keyword_or_assign()]
            while self.accept_op(";"):
                if self.peek().is_op("]"):
                    break
                items.append(self.parse_keyword_or_assign())
            self.expect_op("]")
            return A.ListLit(tuple(items))
        if tok.is_op("[|"):
            if self.accept_op("|]"):
                return A.ArrayLit(())
            items = [self.parse_keyword_or_assign()]
            while self.accept_op(";"):
                if self.peek().is_op("|]"):
                    break
                items.append(self.parse_keyword_or_assign())
            self.expect_op("|]")
            return A.ArrayLit(tuple(items))
        raise self.err(f"unexpected token {tok.text!r}")


def parse_program(source: str) -> A.Program:
    """Parse MiniML source into a program AST."""
    return Parser(tokenize(source)).parse_program()
