"""The MiniML standard prelude.

A small library compiled in front of every program (unless disabled):
list operations, numeric helpers, and array utilities, written in
MiniML itself so they exercise the same byte-code paths as user code.
Top-level dotted names like ``List.map`` are ordinary identifiers to
the lexer, so the prelude simply defines them as globals.
"""

from __future__ import annotations

PRELUDE_SOURCE = """
(* ---- numeric helpers ---- *)
let abs n = if n < 0 then -n else n;;
let min a b = if a <= b then a else b;;
let max a b = if a >= b then a else b;;
let succ n = n + 1;;
let pred n = n - 1;;

(* ---- lists ---- *)
let rec List.length l = match l with [] -> 0 | _ :: t -> 1 + List.length t;;

let List.rev l =
  let rec go acc l = match l with [] -> acc | h :: t -> go (h :: acc) t in
  go [] l;;

let rec List.append a b =
  match a with [] -> b | h :: t -> h :: List.append t b;;

let List.map f l =
  let rec go acc l = match l with [] -> List.rev acc | h :: t -> go (f h :: acc) t in
  go [] l;;

let rec List.iter f l =
  match l with [] -> () | h :: t -> (let _ = f h in List.iter f t);;

let rec List.fold_left f acc l =
  match l with [] -> acc | h :: t -> List.fold_left f (f acc h) t;;

let rec List.mem x l =
  match l with [] -> false | h :: t -> if h = x then true else List.mem x t;;

let rec List.nth l n =
  match l with
  | [] -> failwith "List.nth"
  | h :: t -> if n = 0 then h else List.nth t (n - 1);;

let List.filter p l =
  let rec go acc l =
    match l with
    | [] -> List.rev acc
    | h :: t -> if p h then go (h :: acc) t else go acc t
  in go [] l;;

let rec List.assoc key l =
  match l with
  | [] -> failwith "Not_found"
  | pair :: t -> if pair.(0) = key then pair.(1) else List.assoc key t;;

(* ---- arrays ---- *)
let Array.init n f =
  if n = 0 then [||]
  else begin
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do a.(i) <- f i done;
    a
  end;;

let Array.copy a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let b = Array.make n a.(0) in
    for i = 1 to n - 1 do b.(i) <- a.(i) done;
    b
  end;;

let Array.fill a lo len x =
  for i = lo to lo + len - 1 do a.(i) <- x done;;

let Array.iter f a =
  for i = 0 to Array.length a - 1 do let _ = f a.(i) in () done;;

let Array.to_list a =
  let rec go i acc = if i < 0 then acc else go (i - 1) (a.(i) :: acc) in
  go (Array.length a - 1) [];;

(* ---- strings ---- *)
let String.get s i = s.[i];;
let rec String.repeat s n = if n = 0 then "" else s ^ String.repeat s (n - 1);;
"""


def prelude_globals() -> list[str]:
    """Names the prelude defines (for documentation and tests)."""
    import re

    return re.findall(r"^let (?:rec )?([A-Za-z_][\w.]*)", PRELUDE_SOURCE, re.M)
