"""MiniML to byte-code compiler.

A ZINC-style compilation scheme (the shape of OCaml's ``bytegen``):

* a compile-time virtual stack depth ``sz`` tracks how many words the
  current function has pushed; a stack-bound variable recorded at depth
  ``d`` is read with ``ACC (sz - d)``;
* functions are closure-converted — free variables are captured into
  closure fields accessed with ``ENVACC``, recursion reaches the closure
  itself through ``OFFSETCLOSURE0``;
* multi-parameter functions compile to ``RESTART``/``GRAB`` prologues,
  giving OCaml-compatible partial application;
* tail calls become ``APPTERM`` so loops written as recursion run in
  constant stack space (the paper's insertion sort deliberately is
  *not* tail-recursive, so its stack grows — see Figure 11).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

from repro.bytecode.assembler import Assembler, Label
from repro.bytecode.image import CodeImage
from repro.bytecode.opcodes import Op
from repro.errors import CompileError
from repro.interpreter.primitives import STANDARD_PRIMITIVES, Primitive
from repro.minilang import ast_nodes as A
from repro.minilang.parser import parse_program

# -- locations ---------------------------------------------------------------


@dataclass(frozen=True)
class LocStack:
    """Bound on the stack; ``depth`` is the virtual depth at binding."""

    depth: int


@dataclass(frozen=True)
class LocEnv:
    """Captured in the current closure's environment field ``index``."""

    index: int


@dataclass(frozen=True)
class LocRecSelf:
    """The enclosing recursive closure itself (OFFSETCLOSURE0)."""


@dataclass(frozen=True)
class LocGlobal:
    """A top-level binding stored in the global-data block."""

    index: int


@dataclass(frozen=True)
class LocPrim:
    """A VM primitive (C call)."""

    prim: Primitive


@dataclass(frozen=True)
class LocInline:
    """An instruction-inlined builtin (e.g. Array.length)."""

    op: Op
    nargs: int


Location = Union[LocStack, LocEnv, LocRecSelf, LocGlobal, LocPrim, LocInline]

#: MiniML surface names for primitives (aliases included).
_PRIM_ALIASES = {
    "Array.make": "array_make",
    "String.length": "string_length",
    "String.make": "string_make",
    "String.sub": "string_sub",
    "Thread.create": "thread_create",
    "Thread.join": "thread_join",
    "Thread.yield": "thread_yield",
    "Thread.self": "thread_self",
    "Mutex.create": "mutex_create",
    "Mutex.lock": "mutex_lock",
    "Mutex.unlock": "mutex_unlock",
    "Condition.create": "condition_create",
    "Condition.wait": "condition_wait",
    "Condition.signal": "condition_signal",
    "Condition.broadcast": "condition_broadcast",
    "sqrt": "sqrt_float",
    "Gc.minor": "gc_minor",
    "Gc.full_major": "gc_full_major",
    "Gc.stat": "gc_stat",
    "Gc.compact": "gc_compact",
}

_INLINE_BUILTINS = {
    "Array.length": (Op.VECTLENGTH, 1),
    "vect_length": (Op.VECTLENGTH, 1),
}

_INT_BINOPS = {
    "+": Op.ADDINT,
    "-": Op.SUBINT,
    "*": Op.MULINT,
    "/": Op.DIVINT,
    "mod": Op.MODINT,
    "=": Op.EQ,
    "<>": Op.NEQ,
    "<": Op.LTINT,
    "<=": Op.LEINT,
    ">": Op.GTINT,
    ">=": Op.GEINT,
    "land": Op.ANDINT,
    "lor": Op.ORINT,
    "lxor": Op.XORINT,
    "lsl": Op.LSLINT,
    "lsr": Op.LSRINT,
    "asr": Op.ASRINT,
}

_FLOAT_BINOPS = {
    "+.": "add_float",
    "-.": "sub_float",
    "*.": "mul_float",
    "/.": "div_float",
}


@dataclass
class _PendingFunction:
    label: Label
    params: tuple[str, ...]
    body: A.Expr
    scope: dict[str, Location]


class Compiler:
    """Compiles one MiniML program into a code image."""

    def __init__(self, name: str = "<miniml>") -> None:
        self.asm = Assembler(name)
        self.globals: dict[str, int] = {}
        self._pending: list[_PendingFunction] = []
        self._gensym = itertools.count()

    # -- entry point -------------------------------------------------------------

    def compile(self, program: A.Program) -> CodeImage:
        """Compile a whole program; returns the portable code image."""
        for item in program.items:
            if isinstance(item, A.TopLet) and item.name != "_":
                if item.name not in self.globals:
                    self.globals[item.name] = len(self.globals)
        for item in program.items:
            if isinstance(item, A.TopLet):
                bound = item.bound
                if item.params:
                    bound = A.Fun(item.params, bound)
                elif item.rec:
                    raise CompileError("'let rec' requires parameters")
                scope: dict[str, Location] = {}
                if item.rec:
                    self._compile_closure(
                        bound, scope, 0, rec_name=item.name
                    )
                else:
                    self._expr(bound, scope, 0, tail=False)
                if item.name != "_":
                    self.asm.emit(Op.SETGLOBAL, self.globals[item.name])
            else:
                self._expr(item.expr, {}, 0, tail=False)
        self.asm.emit(Op.STOP)
        # Drain function bodies (the list grows as nested closures appear).
        i = 0
        while i < len(self._pending):
            fn = self._pending[i]
            i += 1
            arity = len(fn.params)
            if arity > 1:
                self.asm.emit(Op.RESTART)
            self.asm.place(fn.label)
            if arity > 1:
                self.asm.emit(Op.GRAB, arity - 1)
            scope = dict(fn.scope)
            for j, p in enumerate(fn.params):
                if p != "_":
                    scope[p] = LocStack(arity - j)
            self._expr(fn.body, scope, arity, tail=True)
        self.asm.n_globals = max(1, len(self.globals))
        return self.asm.assemble()

    # -- name resolution ---------------------------------------------------------------

    def _lookup(self, name: str, scope: dict[str, Location]) -> Location:
        if name in scope:
            return scope[name]
        if name in self.globals:
            return LocGlobal(self.globals[name])
        if name in _INLINE_BUILTINS:
            op, nargs = _INLINE_BUILTINS[name]
            return LocInline(op, nargs)
        prim_name = _PRIM_ALIASES.get(name, name)
        if prim_name in STANDARD_PRIMITIVES:
            return LocPrim(STANDARD_PRIMITIVES.by_name(prim_name))
        raise CompileError(f"unbound identifier {name!r}")

    def _fresh(self, prefix: str) -> str:
        return f"${prefix}{next(self._gensym)}"

    # -- expression compilation ----------------------------------------------------------

    def _expr(
        self,
        e: A.Expr,
        scope: dict[str, Location],
        sz: int,
        tail: bool,
    ) -> None:
        """Compile ``e``; leaves its value in ACCU.

        In tail mode every control path ends with RETURN or APPTERM.
        """
        emit = self.asm.emit

        if isinstance(e, A.IntLit):
            if not -(2**31) <= e.value < 2**31:
                raise CompileError(f"integer literal {e.value} too large")
            emit(Op.CONSTINT, e.value)
            self._ret(tail, sz)
        elif isinstance(e, A.BoolLit):
            emit(Op.CONSTINT, 1 if e.value else 0)
            self._ret(tail, sz)
        elif isinstance(e, A.UnitLit):
            emit(Op.CONSTINT, 0)
            self._ret(tail, sz)
        elif isinstance(e, A.FloatLit):
            emit(Op.FLOATLIT, self.asm.float_literal(e.value))
            self._ret(tail, sz)
        elif isinstance(e, A.StringLit):
            emit(Op.STRLIT, self.asm.string_literal(e.value))
            self._ret(tail, sz)
        elif isinstance(e, A.Var):
            self._var(e.name, scope, sz)
            self._ret(tail, sz)
        elif isinstance(e, A.Fun):
            self._compile_closure(e, scope, sz)
            self._ret(tail, sz)
        elif isinstance(e, A.Let):
            self._let(e, scope, sz, tail)
        elif isinstance(e, A.Apply):
            self._apply(e, scope, sz, tail)
        elif isinstance(e, A.If):
            self._if(e, scope, sz, tail)
        elif isinstance(e, A.Seq):
            self._expr(e.first, scope, sz, tail=False)
            self._expr(e.second, scope, sz, tail)
        elif isinstance(e, A.BinOp):
            self._binop(e, scope, sz)
            self._ret(tail, sz)
        elif isinstance(e, A.UnaryOp):
            self._unop(e, scope, sz)
            self._ret(tail, sz)
        elif isinstance(e, A.Cons):
            self._expr(e.tail, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.head, scope, sz + 1, tail=False)
            emit(Op.MAKEBLOCK, 2, 0)
            self._ret(tail, sz)
        elif isinstance(e, A.ListLit):
            desugared: A.Expr = A.IntLit(0)  # [] is Val_int(0)
            for item in reversed(e.items):
                desugared = A.Cons(item, desugared)
            if isinstance(desugared, A.IntLit):
                emit(Op.CONSTINT, 0)
                self._ret(tail, sz)
            else:
                self._expr(desugared, scope, sz, tail)
        elif isinstance(e, A.ArrayLit):
            n = len(e.items)
            if n == 0:
                emit(Op.ATOM, 0)
                self._ret(tail, sz)
            else:
                cur = sz
                for item in reversed(e.items[1:]):
                    self._expr(item, scope, cur, tail=False)
                    emit(Op.PUSH)
                    cur += 1
                self._expr(e.items[0], scope, cur, tail=False)
                emit(Op.MAKEBLOCK, n, 0)
                self._ret(tail, sz)
        elif isinstance(e, A.ArrayGet):
            self._expr(e.index, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.array, scope, sz + 1, tail=False)
            emit(Op.GETVECTITEM)
            self._ret(tail, sz)
        elif isinstance(e, A.ArraySet):
            self._expr(e.value, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.index, scope, sz + 1, tail=False)
            emit(Op.PUSH)
            self._expr(e.array, scope, sz + 2, tail=False)
            emit(Op.SETVECTITEM)
            self._ret(tail, sz)
        elif isinstance(e, A.StringGet):
            self._expr(e.index, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.string, scope, sz + 1, tail=False)
            emit(Op.GETSTRINGCHAR)
            self._ret(tail, sz)
        elif isinstance(e, A.StringSet):
            self._expr(e.value, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.index, scope, sz + 1, tail=False)
            emit(Op.PUSH)
            self._expr(e.string, scope, sz + 2, tail=False)
            emit(Op.SETSTRINGCHAR)
            self._ret(tail, sz)
        elif isinstance(e, A.MakeRef):
            self._expr(e.init, scope, sz, tail=False)
            emit(Op.MAKEBLOCK, 1, 0)
            self._ret(tail, sz)
        elif isinstance(e, A.RefSet):
            self._expr(e.value, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.ref, scope, sz + 1, tail=False)
            emit(Op.SETFIELD, 0)
            self._ret(tail, sz)
        elif isinstance(e, A.While):
            self._while(e, scope, sz)
            self._ret(tail, sz)
        elif isinstance(e, A.For):
            self._for(e, scope, sz)
            self._ret(tail, sz)
        elif isinstance(e, A.Match):
            self._match(e, scope, sz, tail)
        elif isinstance(e, A.TryWith):
            self._try(e, scope, sz)
            self._ret(tail, sz)
        else:
            raise CompileError(f"cannot compile {type(e).__name__}")

    def _ret(self, tail: bool, sz: int) -> None:
        if tail:
            self.asm.emit(Op.RETURN, sz)

    # -- variables ------------------------------------------------------------------------

    def _var(self, name: str, scope: dict[str, Location], sz: int) -> None:
        loc = self._lookup(name, scope)
        emit = self.asm.emit
        if isinstance(loc, LocStack):
            emit(Op.ACC, sz - loc.depth)
        elif isinstance(loc, LocEnv):
            emit(Op.ENVACC, loc.index)
        elif isinstance(loc, LocRecSelf):
            emit(Op.OFFSETCLOSURE0)
        elif isinstance(loc, LocGlobal):
            emit(Op.GETGLOBAL, loc.index)
        elif isinstance(loc, (LocPrim, LocInline)):
            # A primitive used as a first-class value: eta-expand into a
            # closure on the fly.
            nargs = loc.prim.nargs if isinstance(loc, LocPrim) else loc.nargs
            params = tuple(self._fresh("eta") for _ in range(nargs))
            fn = A.Fun(params, A.Apply(A.Var(name), tuple(A.Var(p) for p in params)))
            self._compile_closure(fn, scope, sz)
        else:  # pragma: no cover
            raise CompileError(f"bad location for {name}")

    # -- closures ---------------------------------------------------------------------------

    def _compile_closure(
        self,
        fn: A.Fun,
        scope: dict[str, Location],
        sz: int,
        rec_name: Optional[str] = None,
    ) -> None:
        fv_all = A.free_vars(fn.body) - set(fn.params)
        if rec_name:
            fv_all -= {rec_name}
        captured: list[str] = []
        for name in sorted(fv_all):
            loc = scope.get(name)
            if isinstance(loc, (LocStack, LocEnv, LocRecSelf)):
                captured.append(name)
            # Globals, primitives and builtins are reached directly.
        emit = self.asm.emit
        cur = sz
        for name in reversed(captured[1:]):
            self._var(name, scope, cur)
            emit(Op.PUSH)
            cur += 1
        if captured:
            self._var(captured[0], scope, cur)
        label = self.asm.label("fn")
        emit(Op.CLOSURE, len(captured), label)
        body_scope: dict[str, Location] = {
            name: LocEnv(i + 1) for i, name in enumerate(captured)
        }
        if rec_name:
            body_scope[rec_name] = LocRecSelf()
        self._pending.append(
            _PendingFunction(label, fn.params, fn.body, body_scope)
        )

    # -- let ----------------------------------------------------------------------------------

    def _let(self, e: A.Let, scope: dict[str, Location], sz: int, tail: bool) -> None:
        bound = e.bound
        if e.params:
            bound = A.Fun(e.params, bound)
        elif e.rec:
            raise CompileError("'let rec' requires parameters")
        if e.rec:
            self._compile_closure(bound, scope, sz, rec_name=e.name)
        else:
            self._expr(bound, scope, sz, tail=False)
        self.asm.emit(Op.PUSH)
        inner = dict(scope)
        if e.name != "_":
            inner[e.name] = LocStack(sz + 1)
        self._expr(e.body, inner, sz + 1, tail)
        if not tail:
            self.asm.emit(Op.POP, 1)

    # -- application ----------------------------------------------------------------------------

    def _apply(self, e: A.Apply, scope: dict[str, Location], sz: int, tail: bool) -> None:
        emit = self.asm.emit
        # Primitive and inline-builtin fast paths.
        if isinstance(e.fn, A.Var) and e.fn.name not in scope:
            try:
                loc = self._lookup(e.fn.name, scope)
            except CompileError:
                loc = None
            if isinstance(loc, LocPrim):
                prim = loc.prim
                if len(e.args) == prim.nargs:
                    cur = sz
                    for arg in reversed(e.args[1:]):
                        self._expr(arg, scope, cur, tail=False)
                        emit(Op.PUSH)
                        cur += 1
                    self._expr(e.args[0], scope, cur, tail=False)
                    emit(Op.C_CALL, prim.nargs, prim.pid)
                    self._ret(tail, sz)
                    return
                if len(e.args) > prim.nargs:
                    raise CompileError(
                        f"primitive {e.fn.name} takes {prim.nargs} argument(s)"
                    )
                # Partial application of a primitive: go through the
                # eta-expanded closure (general path below).
            elif isinstance(loc, LocInline):
                if len(e.args) != loc.nargs:
                    raise CompileError(
                        f"builtin {e.fn.name} takes {loc.nargs} argument(s)"
                    )
                cur = sz
                for arg in reversed(e.args[1:]):
                    self._expr(arg, scope, cur, tail=False)
                    emit(Op.PUSH)
                    cur += 1
                self._expr(e.args[0], scope, cur, tail=False)
                emit(loc.op)
                self._ret(tail, sz)
                return
        n = len(e.args)
        if tail:
            cur = sz
            for arg in reversed(e.args):
                self._expr(arg, scope, cur, tail=False)
                emit(Op.PUSH)
                cur += 1
            self._expr(e.fn, scope, cur, tail=False)
            emit(Op.APPTERM, n, cur)
        else:
            ret = self.asm.label("ret")
            emit(Op.PUSH_RETADDR, ret)
            cur = sz + 3
            for arg in reversed(e.args):
                self._expr(arg, scope, cur, tail=False)
                emit(Op.PUSH)
                cur += 1
            self._expr(e.fn, scope, cur, tail=False)
            emit(Op.APPLY, n)
            self.asm.place(ret)

    # -- conditionals -----------------------------------------------------------------------------

    def _if(self, e: A.If, scope: dict[str, Location], sz: int, tail: bool) -> None:
        emit = self.asm.emit
        els = self.asm.label("else")
        self._expr(e.cond, scope, sz, tail=False)
        emit(Op.BRANCHIFNOT, els)
        self._expr(e.then, scope, sz, tail)
        if tail:
            self.asm.place(els)
            self._expr(e.orelse, scope, sz, tail)
        else:
            end = self.asm.label("endif")
            emit(Op.BRANCH, end)
            self.asm.place(els)
            self._expr(e.orelse, scope, sz, tail)
            self.asm.place(end)

    # -- operators ---------------------------------------------------------------------------------

    def _binop(self, e: A.BinOp, scope: dict[str, Location], sz: int) -> None:
        emit = self.asm.emit
        if e.op in _INT_BINOPS:
            self._expr(e.right, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.left, scope, sz + 1, tail=False)
            emit(_INT_BINOPS[e.op])
            return
        if e.op in _FLOAT_BINOPS:
            prim = STANDARD_PRIMITIVES.by_name(_FLOAT_BINOPS[e.op])
            self._expr(e.right, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.left, scope, sz + 1, tail=False)
            emit(Op.C_CALL, 2, prim.pid)
            return
        if e.op == "^":
            prim = STANDARD_PRIMITIVES.by_name("string_concat")
            self._expr(e.right, scope, sz, tail=False)
            emit(Op.PUSH)
            self._expr(e.left, scope, sz + 1, tail=False)
            emit(Op.C_CALL, 2, prim.pid)
            return
        raise CompileError(f"unknown operator {e.op!r}")

    def _unop(self, e: A.UnaryOp, scope: dict[str, Location], sz: int) -> None:
        emit = self.asm.emit
        self._expr(e.operand, scope, sz, tail=False)
        if e.op == "-":
            emit(Op.NEGINT)
        elif e.op == "not":
            emit(Op.BOOLNOT)
        elif e.op == "!":
            emit(Op.GETFIELD, 0)
        elif e.op == "-.":
            prim = STANDARD_PRIMITIVES.by_name("neg_float")
            emit(Op.C_CALL, 1, prim.pid)
        else:
            raise CompileError(f"unknown unary operator {e.op!r}")

    # -- loops ----------------------------------------------------------------------------------------

    def _while(self, e: A.While, scope: dict[str, Location], sz: int) -> None:
        emit = self.asm.emit
        loop = self.asm.label("while")
        done = self.asm.label("wdone")
        self.asm.place(loop)
        emit(Op.CHECK_SIGNALS)
        self._expr(e.cond, scope, sz, tail=False)
        emit(Op.BRANCHIFNOT, done)
        self._expr(e.body, scope, sz, tail=False)
        emit(Op.BRANCH, loop)
        self.asm.place(done)
        emit(Op.CONSTINT, 0)  # unit result

    def _for(self, e: A.For, scope: dict[str, Location], sz: int) -> None:
        emit = self.asm.emit
        loop = self.asm.label("for")
        done = self.asm.label("fdone")
        self._expr(e.stop, scope, sz, tail=False)
        emit(Op.PUSH)  # limit at depth sz+1
        self._expr(e.start, scope, sz + 1, tail=False)
        emit(Op.PUSH)  # i at depth sz+2
        inner = dict(scope)
        if e.var != "_":
            inner[e.var] = LocStack(sz + 2)
        self.asm.place(loop)
        emit(Op.CHECK_SIGNALS)
        emit(Op.ACC, 1)  # limit
        emit(Op.PUSH)
        emit(Op.ACC, 1)  # i (depth shifts by the push)
        emit(Op.GEINT if e.down else Op.LEINT)
        emit(Op.BRANCHIFNOT, done)
        self._expr(e.body, inner, sz + 2, tail=False)
        emit(Op.ACC, 0)
        emit(Op.OFFSETINT, -1 if e.down else 1)
        emit(Op.ASSIGN, 0)
        emit(Op.BRANCH, loop)
        self.asm.place(done)
        emit(Op.POP, 2)
        emit(Op.CONSTINT, 0)  # unit result

    # -- match -----------------------------------------------------------------------------------------

    def _match(self, e: A.Match, scope: dict[str, Location], sz: int, tail: bool) -> None:
        """Compile ``match``; an exhausted match raises Match_failure."""
        self._expr(e.scrutinee, scope, sz, tail=False)
        self.asm.emit(Op.PUSH)
        end = self.asm.label("mend")
        self._compile_arms(e.arms, scope, sz + 1, tail, end, reraise=False)
        if not tail:
            self.asm.place(end)
            self.asm.emit(Op.POP, 1)
        # In tail mode every arm returned and the failure path raised;
        # nothing remains to emit.

    def _try(self, e: A.TryWith, scope: dict[str, Location], sz: int) -> None:
        """Compile ``try``/``with``: a trap frame around the body, then a
        match over the exception value with re-raise as the default.

        Always compiled in non-tail form: a tail call cannot jump out
        through a live trap frame (OCaml's bytegen restricts this the
        same way).
        """
        emit = self.asm.emit
        handler = self.asm.label("trap")
        end = self.asm.label("tend")
        emit(Op.PUSHTRAP, handler)
        # The trap frame occupies four slots while the body runs.
        self._expr(e.body, scope, sz + 4, tail=False)
        emit(Op.POPTRAP)
        emit(Op.BRANCH, end)
        self.asm.place(handler)
        # RAISE unwound the stack back to depth sz; ACCU holds the
        # exception.  Bind it as the scrutinee of the handler arms.
        emit(Op.PUSH)
        inner_end = self.asm.label("hend")
        self._compile_arms(e.arms, scope, sz + 1, False, inner_end, reraise=True)
        self.asm.place(inner_end)
        emit(Op.POP, 1)
        self.asm.place(end)

    def _compile_arms(
        self,
        arms,
        scope: dict[str, Location],
        sz1: int,
        tail: bool,
        end,
        reraise: bool,
    ) -> None:
        """Shared arm compilation for ``match`` and ``try``/``with``.

        The scrutinee sits on the stack at depth ``sz1``.  Fall-through
        either raises Match_failure (``match``) or re-raises the
        scrutinee (``try`` handlers).
        """
        emit = self.asm.emit
        scrut_depth = sz1
        for pat, body in arms:
            nxt = self.asm.label("marm")
            inner = dict(scope)
            bindings = 0
            if isinstance(pat, A.PWildcard):
                pass
            elif isinstance(pat, A.PVar):
                inner[pat.name] = LocStack(scrut_depth)
            elif isinstance(pat, (A.PInt, A.PBool, A.PEmptyList)):
                if isinstance(pat, A.PInt):
                    const = pat.value
                elif isinstance(pat, A.PBool):
                    const = 1 if pat.value else 0
                else:
                    const = 0
                emit(Op.CONSTINT, const)
                emit(Op.PUSH)
                emit(Op.ACC, sz1 + 1 - scrut_depth)
                emit(Op.EQ)
                emit(Op.BRANCHIFNOT, nxt)
            elif isinstance(pat, A.PString):
                # Non-strings compare unequal (string_equal is total).
                prim = STANDARD_PRIMITIVES.by_name("string_equal")
                emit(Op.STRLIT, self.asm.string_literal(pat.value))
                emit(Op.PUSH)
                emit(Op.ACC, sz1 + 1 - scrut_depth)
                emit(Op.C_CALL, 2, prim.pid)
                emit(Op.BRANCHIFNOT, nxt)
            elif isinstance(pat, A.PCons):
                emit(Op.ACC, sz1 - scrut_depth)
                emit(Op.ISINT)
                emit(Op.BRANCHIF, nxt)
                emit(Op.ACC, sz1 - scrut_depth)
                emit(Op.GETFIELD, 0)
                emit(Op.PUSH)
                if isinstance(pat.head, A.PVar):
                    inner[pat.head.name] = LocStack(sz1 + 1)
                emit(Op.ACC, sz1 + 1 - scrut_depth)
                emit(Op.GETFIELD, 1)
                emit(Op.PUSH)
                if isinstance(pat.tail, A.PVar):
                    inner[pat.tail.name] = LocStack(sz1 + 2)
                bindings = 2
            else:  # pragma: no cover
                raise CompileError(f"unsupported pattern {pat!r}")
            self._expr(body, inner, sz1 + bindings, tail)
            if not tail:
                if bindings:
                    emit(Op.POP, bindings)
                emit(Op.BRANCH, end)
            self.asm.place(nxt)
            if isinstance(pat, (A.PWildcard, A.PVar)):
                # Irrefutable: anything after is unreachable.
                return
        # Fall-through: no arm matched.
        if reraise:
            emit(Op.ACC, 0)  # the scrutinee (the exception)
            emit(Op.RAISE)
        else:
            prim = STANDARD_PRIMITIVES.by_name("match_failure")
            emit(Op.CONSTINT, 0)
            emit(Op.C_CALL, 1, prim.pid)


def compile_program(program: A.Program, name: str = "<miniml>") -> CodeImage:
    """Compile a parsed program (without the standard prelude)."""
    return Compiler(name).compile(program)


def compile_source(
    source: str, name: str = "<miniml>", prelude: bool = True
) -> CodeImage:
    """Parse and compile MiniML source text.

    With ``prelude`` (the default) the standard library —
    ``List.map``/``fold_left``/..., ``Array.init``/``copy``/...,
    ``abs``/``min``/``max`` — is compiled in front of the program.
    """
    program = parse_program(source)
    if prelude:
        from repro.minilang.stdlib import PRELUDE_SOURCE

        # Parsed separately so user error positions stay unshifted.
        prelude_program = parse_program(PRELUDE_SOURCE)
        program = A.Program(prelude_program.items + program.items)
    return compile_program(program, name)
