"""Round-robin scheduler with a virtual preemption timer.

"OCVM schedules a ready thread to run according to specific policies
defined by the system" (paper §2.3).  The timer is virtual: it fires
every ``quantum`` interpreted instructions and takes effect at the next
safe point, which keeps preemption deterministic — a property both the
test suite and reproducible benchmarks rely on.  The checkpointer
disables the timer while a checkpoint is being written (paper §4.1
step 3).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import DeadlockError, ThreadError
from repro.memory.layout import AreaKind
from repro.memory.stack import VMStack
from repro.threads.thread import BlockKind, EXIT_SENTINEL, ThreadState, VMThread

#: Default preemption quantum in interpreted instructions.
DEFAULT_QUANTUM = 1000

#: Default per-thread stack size in words.
THREAD_STACK_WORDS = 1024


class Scheduler:
    """Owns every VM thread and picks who runs next."""

    def __init__(
        self,
        space,
        arch,
        thread_stack_base: int,
        thread_stride: int,
        initial_value: int,
        quantum: int = DEFAULT_QUANTUM,
    ) -> None:
        self._space = space
        self._arch = arch
        self._stack_base = thread_stack_base
        self._stride = thread_stride
        self._initial_value = initial_value
        self.quantum = quantum
        #: Virtual timer enable flag (checkpoint step 3 clears it).
        self.timer_enabled = True
        self.threads: dict[int, VMThread] = {}
        self._next_tid = 0
        self._next_stack_slot = 0
        self.current: Optional[VMThread] = None
        #: True once a second thread has ever been created — the paper's
        #: "application type" saved in the checkpoint header.
        self.ever_multithreaded = False
        #: Context switches performed (statistics).
        self.switches = 0
        #: Dirty hook installed on every stack this scheduler creates
        #: (incremental checkpoints track stack reallocation).
        self.stack_grow_hook = None

    # -- thread creation -----------------------------------------------------

    def new_stack(self, label: str) -> VMStack:
        """Allocate a stack area for a new thread."""
        high = self._stack_base + self._next_stack_slot * self._stride
        self._next_stack_slot += 1
        stack = VMStack(
            self._space,
            self._arch,
            high,
            n_words=THREAD_STACK_WORDS,
            label=label,
            max_words=self._stride // self._arch.word_bytes,
            kind=AreaKind.THREAD_STACK,
        )
        stack.on_grow = self.stack_grow_hook
        return stack

    def create_main(self, stack: VMStack) -> VMThread:
        """Register the main thread (tid 0) using the main VM stack."""
        if self.threads:
            raise ThreadError("main thread already exists")
        t = VMThread(0, stack, self._initial_value)
        self.threads[0] = t
        self._next_tid = 1
        self.current = t
        return t

    def spawn(self, closure: int, code_addr_of: Callable[[int], int]) -> VMThread:
        """Create a thread that will run ``closure`` applied to ``()``.

        The bootstrap stack frame uses the exit sentinel as return
        address, so the interpreter detects thread termination when the
        body returns.
        """
        tid = self._next_tid
        self._next_tid += 1
        stack = self.new_stack(f"thread-stack-{tid}")
        t = VMThread(tid, stack, self._initial_value)
        # Frame: [arg=unit, retaddr=SENTINEL, env=unit-ish, extra_args=0]
        # matching PUSH_RETADDR + one argument.
        stack.push(1)               # Val_int(0): saved extra_args
        stack.push(self._initial_value)  # saved env
        stack.push(EXIT_SENTINEL)   # return address sentinel
        stack.push(1)               # the unit argument
        t.accu = closure
        t.env = closure
        t.pc = code_addr_of(closure)
        t.extra_args = 0
        self.threads[tid] = t
        self.ever_multithreaded = True
        return t

    def adopt(self, thread: VMThread) -> None:
        """Install a thread rebuilt by restart."""
        self.threads[thread.tid] = thread
        self._next_tid = max(self._next_tid, thread.tid + 1)
        if thread.tid >= 1:
            self.ever_multithreaded = True
            slot = (thread.stack.stack_high - self._stack_base) // self._stride
            self._next_stack_slot = max(self._next_stack_slot, slot + 1)

    # -- state transitions -------------------------------------------------------

    def block_current(self, kind: BlockKind, on) -> None:
        """Mark the running thread blocked."""
        t = self.current
        if t is None:
            raise ThreadError("no running thread")
        t.state = ThreadState.BLOCKED
        t.block_kind = kind
        t.blocked_on = on

    def finish(self, thread: VMThread, result: int) -> None:
        """Mark a thread finished and wake its joiners."""
        thread.state = ThreadState.FINISHED
        thread.result = result
        thread.block_kind = BlockKind.NONE
        for other in self.threads.values():
            if (
                other.state is ThreadState.BLOCKED
                and other.block_kind is BlockKind.JOIN
                and other.blocked_on == thread.tid
            ):
                self.make_runnable(other)

    def make_runnable(self, thread: VMThread) -> None:
        """Unblock a thread."""
        thread.state = ThreadState.RUNNABLE
        thread.block_kind = BlockKind.NONE
        thread.blocked_on = self._initial_value

    # -- selection ---------------------------------------------------------------

    def pick_next(self) -> Optional[VMThread]:
        """Round-robin choice of the next runnable thread.

        Returns ``None`` when every thread has finished; raises
        :class:`DeadlockError` when live threads exist but all are
        blocked.
        """
        tids = sorted(self.threads)
        if not tids:
            return None
        start = self.current.tid if self.current is not None else tids[0]
        rotated = [t for t in tids if t > start] + [t for t in tids if t <= start]
        for tid in rotated:
            t = self.threads[tid]
            if t.is_runnable:
                return t
        if any(t.state is ThreadState.BLOCKED for t in self.threads.values()):
            blocked = [
                f"thread {t.tid} ({t.block_kind.value})"
                for t in self.threads.values()
                if t.state is ThreadState.BLOCKED
            ]
            raise DeadlockError(
                "all live threads are blocked: " + ", ".join(blocked)
            )
        return None

    def live_threads(self) -> Iterator[VMThread]:
        """Threads that have not finished."""
        return (t for t in self.threads.values() if t.state is not ThreadState.FINISHED)
