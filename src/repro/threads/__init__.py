"""VM-managed green threads (paper §2.3, §3.1.4, §3.2.3).

Threads are created and scheduled entirely by the virtual machine — the
host OS never sees them.  Each thread owns a private stack and register
set; a round-robin scheduler preempts at safe points driven by a virtual
timer.  Because the VM owns all thread state, the checkpointer can reach
every thread's stack and registers (the paper's key argument for
VM-level C/R of multi-threaded applications).
"""

from repro.threads.thread import VMThread, ThreadState, BlockKind, EXIT_SENTINEL
from repro.threads.scheduler import Scheduler
from repro.threads.sync import MutexOps, CondvarOps

__all__ = [
    "VMThread",
    "ThreadState",
    "BlockKind",
    "EXIT_SENTINEL",
    "Scheduler",
    "MutexOps",
    "CondvarOps",
]
