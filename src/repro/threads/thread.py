"""A single VM thread: registers plus a private stack."""

from __future__ import annotations

import enum

from repro.memory.stack import VMStack

#: Return-address sentinel marking the bottom frame of a thread: an
#: immediate value (LSB set) so the GC and the restart pointer fixer skip
#: it, and distinguishable from any real code address.
EXIT_SENTINEL = (1 << 20) | 1


class ThreadState(enum.Enum):
    """Lifecycle state of a VM thread."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


class BlockKind(enum.Enum):
    """Why a thread is blocked (drives wake-up conditions)."""

    NONE = "none"
    MUTEX = "mutex"        # waiting to acquire blocked_on (a mutex block)
    CONDITION = "cond"     # waiting on blocked_on (a condvar block)
    JOIN = "join"          # waiting for thread id blocked_on to finish


class VMThread:
    """One green thread: registers, stack, and scheduling state."""

    def __init__(self, tid: int, stack: VMStack, initial_value: int) -> None:
        self.tid = tid
        self.stack = stack
        #: Saved registers (live registers sit in the interpreter while the
        #: thread is running).
        self.accu: int = initial_value
        self.env: int = initial_value
        self.pc: int = 0  # code unit index
        self.extra_args: int = 0
        #: Address of the innermost trap frame on this thread's stack,
        #: or 0 when no exception handler is installed.
        self.trapsp: int = 0
        self.state = ThreadState.RUNNABLE
        self.block_kind = BlockKind.NONE
        #: What the thread is blocked on: a heap pointer (mutex/condvar
        #: value) or a thread id for joins.  Heap pointers here are GC
        #: roots and are fixed up on restart.
        self.blocked_on: int = initial_value
        #: Mutex value the thread must acquire before it resumes (set by
        #: ``mutex_lock`` contention and by ``condition_wait``); the
        #: scheduler performs the acquisition at schedule time, making the
        #: blocking primitives idempotent across checkpoints.
        self.pending_mutex: int = initial_value
        #: Result value of the thread body once finished.
        self.result: int = initial_value

    @property
    def is_runnable(self) -> bool:
        """True if the scheduler may pick this thread."""
        return self.state is ThreadState.RUNNABLE

    @property
    def blocked_on_is_value(self) -> bool:
        """True when ``blocked_on`` holds a VM value (not a thread id)."""
        return self.block_kind in (BlockKind.MUTEX, BlockKind.CONDITION)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VMThread {self.tid} {self.state.value}>"
