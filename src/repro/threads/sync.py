"""Mutexes and condition variables (paper §3.2.3).

Both are ordinary scannable heap blocks, so their state is checkpointed
with the heap and their pointers are adjusted on restart like any other
value; the *wait sets* are derived from per-thread blocking state, which
the checkpointer saves with the thread table.  This is exactly the
arrangement that lets the paper's restart policy — "no thread can start
running until all threads are fully restored" — avoid the lost-wakeup
deadlock described in §3.2.3.

A mutex block has two fields: ``locked`` (bool) and ``owner`` (thread id,
-1 when free).  A condition variable block has one unused field (block
identity is what matters).
"""

from __future__ import annotations

from repro.errors import ThreadError
from repro.memory.manager import MemoryManager
from repro.threads.scheduler import Scheduler
from repro.threads.thread import BlockKind, ThreadState, VMThread

_LOCKED = 0
_OWNER = 1


class MutexOps:
    """Operations on mutex blocks."""

    def __init__(self, mem: MemoryManager, sched: Scheduler) -> None:
        self.mem = mem
        self.sched = sched

    def create(self) -> int:
        """Allocate a fresh, unlocked mutex block."""
        v = self.mem.values
        return self.mem.make_block(0, [v.val_false, v.val_int(-1)])

    def is_locked(self, mutex: int) -> bool:
        """True if the mutex is currently held."""
        return self.mem.values.bool_val(self.mem.field(mutex, _LOCKED))

    def owner(self, mutex: int) -> int:
        """Thread id of the holder, or -1."""
        return self.mem.values.int_val(self.mem.field(mutex, _OWNER))

    def try_acquire(self, mutex: int, tid: int) -> bool:
        """Acquire if free; never blocks."""
        v = self.mem.values
        if self.is_locked(mutex):
            return False
        self.mem.set_field(mutex, _LOCKED, v.val_true)
        self.mem.set_field(mutex, _OWNER, v.val_int(tid))
        return True

    def lock(self, mutex: int) -> bool:
        """Lock on behalf of the current thread.

        Returns True if acquired immediately; False if the thread was
        blocked (the scheduler acquires on its behalf before resuming it).
        """
        t = self.sched.current
        if t is None:
            raise ThreadError("no running thread")
        if self.owner(mutex) == t.tid:
            raise ThreadError(f"thread {t.tid} relocking a mutex it holds")
        if self.try_acquire(mutex, t.tid):
            return True
        t.pending_mutex = mutex
        self.sched.block_current(BlockKind.MUTEX, mutex)
        return False

    def unlock(self, mutex: int) -> None:
        """Unlock and wake every thread waiting to acquire this mutex.

        Wake-all plus schedule-time re-acquisition resolves contention
        (the losers re-block), which keeps the primitive idempotent.
        """
        t = self.sched.current
        v = self.mem.values
        if not self.is_locked(mutex):
            raise ThreadError("unlocking an unlocked mutex")
        if t is not None and self.owner(mutex) != t.tid:
            raise ThreadError(
                f"thread {t.tid} unlocking a mutex held by {self.owner(mutex)}"
            )
        self.mem.set_field(mutex, _LOCKED, v.val_false)
        self.mem.set_field(mutex, _OWNER, v.val_int(-1))
        self._wake_waiters(mutex)

    def _wake_waiters(self, mutex: int) -> None:
        for other in self.sched.threads.values():
            if (
                other.state is ThreadState.BLOCKED
                and other.block_kind is BlockKind.MUTEX
                and other.blocked_on == mutex
            ):
                pending = other.pending_mutex
                self.sched.make_runnable(other)
                other.pending_mutex = pending  # survive the reset

    def acquire_for_resume(self, thread: VMThread) -> bool:
        """Schedule-time acquisition of ``thread.pending_mutex``.

        Called by the interpreter before resuming a thread.  On failure
        the thread goes back to sleep on the mutex.
        """
        mutex = thread.pending_mutex
        if self.try_acquire(mutex, thread.tid):
            thread.pending_mutex = self.mem.values.val_unit
            return True
        thread.state = ThreadState.BLOCKED
        thread.block_kind = BlockKind.MUTEX
        thread.blocked_on = mutex
        return False


class CondvarOps:
    """Operations on condition-variable blocks."""

    def __init__(self, mem: MemoryManager, sched: Scheduler, mutexes: MutexOps) -> None:
        self.mem = mem
        self.sched = sched
        self.mutexes = mutexes

    def create(self) -> int:
        """Allocate a fresh condition variable block."""
        return self.mem.make_block(0, [self.mem.values.val_unit])

    def wait(self, cond: int, mutex: int) -> None:
        """Atomically release ``mutex`` and sleep on ``cond``.

        On wake-up the thread re-acquires the mutex (at schedule time)
        before resuming user code.
        """
        t = self.sched.current
        if t is None:
            raise ThreadError("no running thread")
        if self.mutexes.owner(mutex) != t.tid:
            raise ThreadError("condition_wait requires holding the mutex")
        self.mutexes.unlock(mutex)
        t.pending_mutex = mutex
        self.sched.block_current(BlockKind.CONDITION, cond)

    def _waiters(self, cond: int) -> list[VMThread]:
        return [
            t
            for t in self.sched.threads.values()
            if t.state is ThreadState.BLOCKED
            and t.block_kind is BlockKind.CONDITION
            and t.blocked_on == cond
        ]

    def signal(self, cond: int) -> None:
        """Wake one waiter (lowest tid, for determinism)."""
        waiters = sorted(self._waiters(cond), key=lambda t: t.tid)
        if waiters:
            self._wake(waiters[0])

    def broadcast(self, cond: int) -> None:
        """Wake every waiter."""
        for t in self._waiters(cond):
            self._wake(t)

    def _wake(self, thread: VMThread) -> None:
        pending = thread.pending_mutex
        self.sched.make_runnable(thread)
        thread.pending_mutex = pending  # must still re-acquire the mutex
