"""Phase timing instrumentation.

The paper's Figures 13 and 14 break checkpoint and restart down into
their substantial parts (minor GC, heap dump, stack, commit, ... /
heap restore, pointer fixing, conversion, ...).  ``PhaseTimer`` is the
shared instrument both the writer and the reader use to produce those
breakdowns.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class PhaseTimer:
    """Accumulates wall-clock time per named phase."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        #: Fine-grained kernel timings nested *inside* phases.  Kept in a
        #: separate dict so they never double-count toward :attr:`total`.
        self.kernel_seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Time one phase (additive across repeated entries)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.seconds[name] = self.seconds.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def kernel(self, name: str):
        """Time one kernel inside an enclosing phase.

        Kernel time is informational (which inner loop dominates a
        phase); it is excluded from :attr:`total` and :meth:`fractions`
        because the enclosing phase already accounts for it.
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.kernel_seconds[name] = (
                self.kernel_seconds.get(name, 0.0) + dt
            )

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase share of the total (empty timer -> empty dict)."""
        total = self.total
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.seconds.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's phases into this one."""
        for k, v in other.seconds.items():
            self.add(k, v)
        for k, v in other.kernel_seconds.items():
            self.kernel_seconds[k] = self.kernel_seconds.get(k, 0.0) + v

    def as_dict(self) -> dict:
        """JSON-able breakdown (seconds, entry counts, kernel timings)."""
        return {
            "total_seconds": self.total,
            "phases": dict(self.seconds),
            "counts": dict(self.counts),
            "kernels": dict(self.kernel_seconds),
        }

    def report(self, title: str = "phases") -> str:
        """Human-readable table of the breakdown."""
        lines = [f"{title}: total {self.total * 1e3:.3f} ms"]
        for name, sec in sorted(
            self.seconds.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * sec / self.total if self.total else 0.0
            lines.append(f"  {name:<24s} {sec * 1e3:10.3f} ms  {share:5.1f}%")
        for name, sec in sorted(
            self.kernel_seconds.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  [kernel] {name:<15s} {sec * 1e3:10.3f} ms")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Integrity accounting
# ---------------------------------------------------------------------------


@dataclass
class IntegrityCounters:
    """Process-wide counts of integrity events on the checkpoint path.

    A restore that survives corruption by walking a generation chain, or
    an ``fsck`` that patches damaged sections, must leave an audit trail
    an operator can alarm on — silently healed corruption hides a dying
    disk.  ``repro info --json`` and the HA supervisor report these.
    """

    #: Checkpoint files that failed CRC/digest/parse verification.
    integrity_failures: int = 0
    #: Restores that succeeded only by falling back to an older
    #: generation (local ``path.N`` chain or an earlier store manifest).
    fallback_restores: int = 0
    #: File sections repaired in place from a store replica by fsck.
    sections_repaired: int = 0
    #: Background checkpoint writes that failed after the application
    #: had already resumed (the error surfaces at the next join).
    background_checkpoint_failures: int = 0
    #: Diagnosis of the most recent fallback generation walk: which
    #: requested head failed, every link that was tried with its error
    #: (and the failing section, when known), and which file finally
    #: restored.  Empty until a fallback happens.
    last_fallback: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "integrity_failures": self.integrity_failures,
            "fallback_restores": self.fallback_restores,
            "sections_repaired": self.sections_repaired,
            "background_checkpoint_failures": self.background_checkpoint_failures,
            "last_fallback": dict(self.last_fallback),
        }

    def delta_since(self, snapshot: dict) -> dict:
        """Counter movement since an :meth:`as_dict` snapshot.

        Only numeric counters move; diagnostic payloads like
        :attr:`last_fallback` are point-in-time state, not deltas.
        """
        return {
            k: v - snapshot.get(k, 0)
            for k, v in self.as_dict().items()
            if isinstance(v, (int, float))
        }

    def reset(self) -> None:
        self.integrity_failures = 0
        self.fallback_restores = 0
        self.sections_repaired = 0
        self.background_checkpoint_failures = 0
        self.last_fallback = {}


#: The module-level instance everything increments (GIL-atomic int adds).
INTEGRITY = IntegrityCounters()


# ---------------------------------------------------------------------------
# Restart / lazy-restore accounting
# ---------------------------------------------------------------------------


@dataclass
class RestartCounters:
    """Process-wide counters for deferred (lazy) restarts.

    A lazy restart defers most of the file's bytes — read, CRC, parse —
    behind section handles; the deferred share is verified later by the
    first-touch thunks and the background drain.  These counters say how
    much work restart actually put off, and whether any deferred section
    turned out to be corrupt after the application had already resumed
    (:attr:`late_failures` — the alarmable one).
    """

    #: Restores that deferred heap conversion and section verification.
    lazy_restores: int = 0
    #: Body sections still unresolved when a lazy restart returned.
    sections_deferred: int = 0
    #: Bytes whose read + CRC verification restart deferred.
    bytes_deferred: int = 0
    #: Deferred verifications completed after restart (per source file).
    late_verifications: int = 0
    #: Deferred verifications that FAILED after the VM was running —
    #: surfaced as the typed late CheckpointIntegrityError.
    late_failures: int = 0

    def as_dict(self) -> dict:
        return {
            "lazy_restores": self.lazy_restores,
            "sections_deferred": self.sections_deferred,
            "bytes_deferred": self.bytes_deferred,
            "late_verifications": self.late_verifications,
            "late_failures": self.late_failures,
        }

    def delta_since(self, snapshot: dict) -> dict:
        """Counter movement since an :meth:`as_dict` snapshot."""
        return {
            k: v - snapshot.get(k, 0) for k, v in self.as_dict().items()
        }

    def reset(self) -> None:
        self.lazy_restores = 0
        self.sections_deferred = 0
        self.bytes_deferred = 0
        self.late_verifications = 0
        self.late_failures = 0


#: The module-level instance the lazy restart path increments.
RESTART = RestartCounters()


# ---------------------------------------------------------------------------
# Incremental-checkpoint accounting
# ---------------------------------------------------------------------------


@dataclass
class DeltaCounters:
    """Process-wide counts for incremental (delta) checkpointing.

    ``repro info --json`` reports these so an operator can see whether
    the dirty-ratio heuristics actually pay off in their workload.
    """

    #: Full checkpoints written (including forced fallbacks to full).
    checkpoints_full: int = 0
    #: Delta (format v4) checkpoints written.
    checkpoints_delta: int = 0
    #: Dirty regions serialized across all delta checkpoints.
    dirty_regions: int = 0
    #: Bytes a delta saved versus the full heap dump it replaced
    #: (heap words * word size minus the delta file size, clamped at 0).
    delta_bytes_saved: int = 0
    #: Wall-clock seconds of hashing/compression overlapped with socket
    #: writes by the pipelined store upload.
    upload_overlap_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "checkpoints_full": self.checkpoints_full,
            "checkpoints_delta": self.checkpoints_delta,
            "dirty_regions": self.dirty_regions,
            "delta_bytes_saved": self.delta_bytes_saved,
            "upload_overlap_seconds": self.upload_overlap_seconds,
        }

    def reset(self) -> None:
        self.checkpoints_full = 0
        self.checkpoints_delta = 0
        self.dirty_regions = 0
        self.delta_bytes_saved = 0
        self.upload_overlap_seconds = 0.0


#: The module-level instance the writer and store client increment.
DELTA = DeltaCounters()


# ---------------------------------------------------------------------------
# Store transport accounting
# ---------------------------------------------------------------------------


@dataclass
class StoreCounters:
    """Process-wide store-client transport accounting.

    ``repro info --json`` reports these; a climbing retry count with a
    healthy store means the network (or a lockstep-retry bug) is the
    problem, not the daemon.
    """

    #: Requests that needed at least one transport-level retry
    #: (summed across every client in this process).
    transport_retries: int = 0

    def as_dict(self) -> dict:
        return {"transport_retries": self.transport_retries}

    def reset(self) -> None:
        self.transport_retries = 0


#: The module-level instance every StoreClient increments.
STORE = StoreCounters()


# ---------------------------------------------------------------------------
# Fleet accounting
# ---------------------------------------------------------------------------


@dataclass
class FleetCounters:
    """Process-wide counters for the sharded store fleet client.

    The interesting ratios: ``batched_ops / batches_sent`` says how much
    round-trip amortization RSTP/2 batching is buying, and
    :attr:`cache_hit_rate` says how often the presence cache let a
    repeat upload skip the wire entirely.
    """

    #: BATCH frames sent (each carries many sub-operations).
    batches_sent: int = 0
    #: Sub-operations carried inside those BATCH frames.
    batched_ops: int = 0
    #: Chunks received via streamed GET_MANY responses.
    streamed_chunks: int = 0
    #: Presence-cache lookups answered without a round trip.
    cache_hits: int = 0
    #: Presence-cache lookups that had to go to the wire.
    cache_misses: int = 0
    #: Whole-cache drops forced by a moved destruction epoch.
    cache_invalidations: int = 0
    #: Commits retried after a stale positive cache entry (the chunk
    #: had been gc'ed under us) forced a re-upload.
    stale_cache_retries: int = 0
    #: Chunks copied to their owner shard by rebalance/gc placement.
    rebalance_moves: int = 0
    #: Manifests re-homed onto their owner shard by rebalance.
    manifest_moves: int = 0
    #: Chunks found on a non-owner shard during reads (pre-rebalance).
    misplaced_fetches: int = 0

    @property
    def cache_hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def as_dict(self) -> dict:
        return {
            "batches_sent": self.batches_sent,
            "batched_ops": self.batched_ops,
            "streamed_chunks": self.streamed_chunks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidations": self.cache_invalidations,
            "cache_hit_rate": self.cache_hit_rate,
            "stale_cache_retries": self.stale_cache_retries,
            "rebalance_moves": self.rebalance_moves,
            "manifest_moves": self.manifest_moves,
            "misplaced_fetches": self.misplaced_fetches,
        }

    def reset(self) -> None:
        self.batches_sent = 0
        self.batched_ops = 0
        self.streamed_chunks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.stale_cache_retries = 0
        self.rebalance_moves = 0
        self.manifest_moves = 0
        self.misplaced_fetches = 0


#: The module-level instance the fleet client and cache increment.
FLEET = FleetCounters()


# ---------------------------------------------------------------------------
# Warm-standby replication accounting
# ---------------------------------------------------------------------------


@dataclass
class ReplicationCounters:
    """Process-wide counters for warm-standby continuous replication.

    The gauges (:attr:`lag_generations`, :attr:`lag_bytes`,
    :attr:`output_held_bytes`) reflect the *current* state of the
    channel: how far the standby trails the primary and how much stdout
    the output rule is holding back.  The event counters accumulate;
    :attr:`promotions` and :attr:`fenced_demotions` are the split-brain
    audit trail an operator alarms on.
    """

    #: Committed generations shipped to the standby.
    generations_sent: int = 0
    #: Generations the standby spliced into its resident VM.
    generations_applied: int = 0
    #: Checkpoint payload bytes shipped (files + carried stdout).
    bytes_sent: int = 0
    #: Acknowledgements received by the primary.
    acks: int = 0
    #: GEN frames re-sent after an ack timeout.
    retransmits: int = 0
    #: Duplicate GEN frames the standby dropped (already applied).
    duplicates_dropped: int = 0
    #: Heartbeat windows the standby's failure detector missed.
    heartbeats_missed: int = 0
    #: Gauge: generations sent but not yet acknowledged.
    lag_generations: int = 0
    #: Gauge: bytes sent but not yet acknowledged.
    lag_bytes: int = 0
    #: Gauge: stdout bytes buffered behind the output rule.
    output_held_bytes: int = 0
    #: Standby takeovers (epoch lease acquired, resident VM promoted).
    promotions: int = 0
    #: Nodes that observed a higher epoch and fenced themselves.
    fenced_demotions: int = 0

    def as_dict(self) -> dict:
        return {
            "generations_sent": self.generations_sent,
            "generations_applied": self.generations_applied,
            "bytes_sent": self.bytes_sent,
            "acks": self.acks,
            "retransmits": self.retransmits,
            "duplicates_dropped": self.duplicates_dropped,
            "heartbeats_missed": self.heartbeats_missed,
            "lag_generations": self.lag_generations,
            "lag_bytes": self.lag_bytes,
            "output_held_bytes": self.output_held_bytes,
            "promotions": self.promotions,
            "fenced_demotions": self.fenced_demotions,
        }

    def delta_since(self, snapshot: dict) -> dict:
        """Counter movement since an :meth:`as_dict` snapshot."""
        return {
            k: v - snapshot.get(k, 0) for k, v in self.as_dict().items()
        }

    def reset(self) -> None:
        self.generations_sent = 0
        self.generations_applied = 0
        self.bytes_sent = 0
        self.acks = 0
        self.retransmits = 0
        self.duplicates_dropped = 0
        self.heartbeats_missed = 0
        self.lag_generations = 0
        self.lag_bytes = 0
        self.output_held_bytes = 0
        self.promotions = 0
        self.fenced_demotions = 0


#: The module-level instance the replication channel increments.
REPLICATION = ReplicationCounters()
