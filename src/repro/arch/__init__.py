"""Simulated hardware architecture and operating-system personalities.

The paper's heterogeneity axes are word size (32/64 bit), byte order
(little/big endian), and operating system (POSIX-like with ``fork`` vs
Windows NT without it).  This package models those axes so that a VM
instance can be created "on" any of the paper's Table 1 machines.
"""

from repro.arch.architecture import (
    Architecture,
    Endianness,
    ARCH_32_LE,
    ARCH_32_BE,
    ARCH_64_LE,
    ARCH_64_BE,
)
from repro.arch.codec import WordCodec
from repro.arch.platforms import (
    OSFamily,
    Platform,
    PLATFORMS,
    get_platform,
    RODRIGO,
    PC8,
    CSD,
    SP2148,
    RS6000,
    ULTRA64,
)

__all__ = [
    "Architecture",
    "Endianness",
    "ARCH_32_LE",
    "ARCH_32_BE",
    "ARCH_64_LE",
    "ARCH_64_BE",
    "WordCodec",
    "OSFamily",
    "Platform",
    "PLATFORMS",
    "get_platform",
    "RODRIGO",
    "PC8",
    "CSD",
    "SP2148",
    "RS6000",
    "ULTRA64",
]
