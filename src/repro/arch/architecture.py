"""Architecture model: word size and byte order.

All VM values are machine words of the simulated architecture.  Words are
held in Python as non-negative ints in ``[0, 2**bits)``; the architecture
provides signed/unsigned reinterpretation and the byte-level encoding used
by the checkpoint writer (native representation on disk, as in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Endianness(enum.Enum):
    """Byte order of the simulated machine."""

    LITTLE = "little"
    BIG = "big"

    @property
    def numpy_prefix(self) -> str:
        """The numpy dtype byte-order character (``<`` or ``>``)."""
        return "<" if self is Endianness.LITTLE else ">"


@dataclass(frozen=True)
class Architecture:
    """A simulated hardware architecture.

    Attributes
    ----------
    bits:
        Machine word size in bits (32 or 64).
    endianness:
        Byte order used when words are laid out in memory / on disk.
    name:
        Human-readable family name (e.g. ``"pentium-ii"``); purely
        informational, two architectures with equal ``bits`` and
        ``endianness`` are data-compatible regardless of name.
    """

    bits: int
    endianness: Endianness
    name: str = ""

    def __post_init__(self) -> None:
        if self.bits not in (32, 64):
            raise ValueError(f"unsupported word size: {self.bits} bits")

    # -- word geometry ----------------------------------------------------

    @property
    def word_bytes(self) -> int:
        """Word size in bytes (4 or 8)."""
        return self.bits // 8

    @property
    def word_mask(self) -> int:
        """Mask selecting the low ``bits`` bits of an int."""
        return (1 << self.bits) - 1

    @property
    def sign_bit(self) -> int:
        """The word's sign bit as an int."""
        return 1 << (self.bits - 1)

    @property
    def max_signed(self) -> int:
        """Largest representable signed word value."""
        return self.sign_bit - 1

    @property
    def min_signed(self) -> int:
        """Smallest (most negative) representable signed word value."""
        return -self.sign_bit

    # -- value reinterpretation -------------------------------------------

    def to_unsigned(self, value: int) -> int:
        """Wrap an arbitrary Python int to this architecture's word range."""
        return value & self.word_mask

    def to_signed(self, word: int) -> int:
        """Reinterpret an unsigned word as a signed two's-complement int."""
        word &= self.word_mask
        if word & self.sign_bit:
            return word - (1 << self.bits)
        return word

    def asr(self, word: int, shift: int) -> int:
        """Arithmetic shift right of a word, as the hardware would do it."""
        return self.to_unsigned(self.to_signed(word) >> shift)

    # -- byte-level encoding ----------------------------------------------

    @property
    def numpy_dtype(self) -> str:
        """Numpy dtype string for words in this architecture's layout."""
        return f"{self.endianness.numpy_prefix}u{self.word_bytes}"

    def word_to_bytes(self, word: int) -> bytes:
        """Encode one word in this architecture's native byte order."""
        return (word & self.word_mask).to_bytes(
            self.word_bytes, self.endianness.value
        )

    def word_from_bytes(self, data: bytes) -> int:
        """Decode one native word from ``word_bytes`` bytes."""
        if len(data) != self.word_bytes:
            raise ValueError(
                f"expected {self.word_bytes} bytes, got {len(data)}"
            )
        return int.from_bytes(data, self.endianness.value)

    # -- in-word byte addressing ------------------------------------------

    def byte_of_word(self, word: int, index: int) -> int:
        """Return the byte at in-memory offset ``index`` of a stored word.

        On a little-endian machine byte 0 is the least significant byte; on
        a big-endian machine byte 0 is the most significant byte.  String
        data in the VM heap is addressed through this, exactly like
        ``((char *) p)[i]`` in the real OCVM.
        """
        if not 0 <= index < self.word_bytes:
            raise IndexError(f"byte index {index} out of word range")
        if self.endianness is Endianness.LITTLE:
            shift = 8 * index
        else:
            shift = 8 * (self.word_bytes - 1 - index)
        return (word >> shift) & 0xFF

    def set_byte_of_word(self, word: int, index: int, byte: int) -> int:
        """Return ``word`` with its in-memory byte ``index`` set to ``byte``."""
        if not 0 <= index < self.word_bytes:
            raise IndexError(f"byte index {index} out of word range")
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"byte value {byte} out of range")
        if self.endianness is Endianness.LITTLE:
            shift = 8 * index
        else:
            shift = 8 * (self.word_bytes - 1 - index)
        return (word & ~(0xFF << shift) & self.word_mask) | (byte << shift)

    def word_to_memory_bytes(self, word: int) -> bytes:
        """Bytes of a word in memory order (same as native encoding)."""
        return self.word_to_bytes(word)

    # -- compatibility predicates -----------------------------------------

    def data_compatible(self, other: "Architecture") -> bool:
        """True if raw words from ``other`` can be used without conversion."""
        return self.bits == other.bits and self.endianness == other.endianness

    def describe(self) -> str:
        """Short human-readable description, e.g. ``"32-bit little-endian"``."""
        label = f"{self.bits}-bit {self.endianness.value}-endian"
        return f"{self.name} ({label})" if self.name else label


#: Canonical architecture instances covering the paper's axes.
ARCH_32_LE = Architecture(32, Endianness.LITTLE, "ia32")
ARCH_32_BE = Architecture(32, Endianness.BIG, "sparc32")
ARCH_64_LE = Architecture(64, Endianness.LITTLE, "alpha")
ARCH_64_BE = Architecture(64, Endianness.BIG, "sparc64")
