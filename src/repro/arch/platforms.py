"""The paper's Table 1: simulated machines used for heterogeneous C/R.

Each :class:`Platform` bundles an architecture, an OS personality, and a
base-address layout for the VM memory areas.  Distinct platforms use
distinct base addresses, so even a same-architecture restart exercises the
pointer-adjustment machinery — just as a real restart lands the heap at a
different ``malloc`` address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.architecture import (
    ARCH_32_BE,
    ARCH_32_LE,
    ARCH_64_BE,
    ARCH_64_LE,
    Architecture,
)


class OSFamily(enum.Enum):
    """Operating-system personality, as far as checkpointing cares."""

    LINUX = "linux"
    SOLARIS = "solaris"
    AIX = "aix"
    WINDOWS_NT = "windows-nt"
    TRU64 = "tru64"

    @property
    def supports_fork(self) -> bool:
        """NT has no ``fork``; checkpoints there block the application."""
        return self is not OSFamily.WINDOWS_NT


@dataclass(frozen=True)
class AddressLayout:
    """Base virtual addresses for the VM's main memory areas.

    The numbers are arbitrary but page-aligned and far apart; they play the
    role of the ``malloc`` return values on the paper's machines.  Pointer
    adjustment during restart maps addresses from the checkpointing
    platform's layout to the restarting platform's layout.
    """

    heap_base: int = 0x0800_0000
    minor_base: int = 0x0400_0000
    stack_base: int = 0x0200_0000
    code_base: int = 0x0100_0000
    atom_base: int = 0x00F0_0000
    cglobal_base: int = 0x00E0_0000
    thread_stack_base: int = 0x2000_0000
    #: Stride between consecutive heap chunk bases.
    chunk_stride: int = 0x0010_0000
    #: Stride between consecutive thread stack bases.
    thread_stride: int = 0x0004_0000

    def shifted(self, delta: int) -> "AddressLayout":
        """A copy of this layout with every base shifted by ``delta``."""
        return AddressLayout(
            heap_base=self.heap_base + delta,
            minor_base=self.minor_base + delta,
            stack_base=self.stack_base + delta,
            code_base=self.code_base + delta,
            atom_base=self.atom_base + delta,
            cglobal_base=self.cglobal_base + delta,
            thread_stack_base=self.thread_stack_base + delta,
            chunk_stride=self.chunk_stride,
            thread_stride=self.thread_stride,
        )


@dataclass(frozen=True)
class Platform:
    """One row of the paper's Table 1: a machine we can run the VM on."""

    name: str
    arch: Architecture
    os: OSFamily
    description: str = ""
    layout: AddressLayout = field(default_factory=AddressLayout)

    @property
    def supports_fork(self) -> bool:
        """Whether checkpoint can run concurrently with the application."""
        return self.os.supports_fork

    def describe(self) -> str:
        """One-line description in the style of the paper's Table 1."""
        return (
            f"{self.name}: {self.arch.describe()}, {self.os.value}"
            + (f" — {self.description}" if self.description else "")
        )


def _layout(seed: int) -> AddressLayout:
    # Page-aligned, platform-specific shift so that no two platforms map
    # any area at the same base address.
    return AddressLayout().shifted(seed * 0x0001_0000)


#: Intel Pentium II running Linux RedHat 6.1 — the checkpointing machine in
#: the paper's experiments.
RODRIGO = Platform(
    "rodrigo", ARCH_32_LE, OSFamily.LINUX,
    "Intel Pentium II, Linux RedHat 6.1 (checkpoint origin)", _layout(1),
)
#: Intel Pentium II running Windows NT — same architecture, different OS,
#: and no ``fork``.
PC8 = Platform(
    "pc8", ARCH_32_LE, OSFamily.WINDOWS_NT,
    "Intel Pentium II, Windows NT (no fork: blocking checkpoints)", _layout(2),
)
#: Dual UltraSparc running Solaris — big-endian, so restarting here
#: converts every non-pointer word.
CSD = Platform(
    "csd", ARCH_32_BE, OSFamily.SOLARIS,
    "Sun Ultra Enterprise (dual), Solaris — big-endian", _layout(3),
)
#: Dual Alpha running Linux RedHat 6.2 — 64-bit, so restarting here widens
#: every word.
SP2148 = Platform(
    "sp2148", ARCH_64_LE, OSFamily.LINUX,
    "Compaq Alpha (dual), Linux RedHat 6.2 — 64-bit", _layout(4),
)
#: IBM RS/6000 running AIX — big-endian PowerPC.
RS6000 = Platform(
    "rs6000", ARCH_32_BE, OSFamily.AIX,
    "IBM RS/6000, AIX — big-endian", _layout(5),
)
#: A 64-bit big-endian UltraSparc, exercising both conversions at once.
ULTRA64 = Platform(
    "ultra64", ARCH_64_BE, OSFamily.SOLARIS,
    "Sun UltraSparc (64-bit kernel), Solaris — big-endian 64-bit", _layout(6),
)

#: All simulated platforms, keyed by name (the reproduction of Table 1).
PLATFORMS: dict[str, Platform] = {
    p.name: p for p in (RODRIGO, PC8, CSD, SP2148, RS6000, ULTRA64)
}


def get_platform(name: str) -> Platform:
    """Look up a platform by its Table 1 machine name."""
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
