"""Vectorized encoding of word arrays to/from native byte streams.

The checkpoint writer dumps whole memory areas; doing that one word at a
time would dominate checkpoint cost in Python, so the codec goes through
numpy: a list of Python ints becomes a numpy array with the architecture's
dtype (which performs the byte swap for big-endian layouts in C) and is
then written with ``tobytes``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arch.architecture import Architecture


class WordCodec:
    """Encode/decode sequences of machine words for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._dtype = np.dtype(arch.numpy_dtype)

    def encode(self, words: Sequence[int]) -> bytes:
        """Serialize ``words`` into the architecture's native byte layout."""
        arr = np.asarray(words, dtype=np.uint64) & np.uint64(self.arch.word_mask)
        return arr.astype(self._dtype).tobytes()

    def decode(self, data: bytes) -> list[int]:
        """Deserialize a native byte stream back into a list of words."""
        return self.decode_array(data).tolist()

    def encode_array(self, arr: np.ndarray) -> bytes:
        """Serialize a word array (any unsigned dtype) into native bytes."""
        if arr.dtype == self._dtype:
            return arr.tobytes()
        wide = arr.astype(np.uint64) & np.uint64(self.arch.word_mask)
        return wide.astype(self._dtype).tobytes()

    def decode_array(self, data: bytes) -> np.ndarray:
        """Deserialize a native byte stream into a ``uint64`` array."""
        if len(data) % self.arch.word_bytes:
            raise ValueError(
                f"byte stream length {len(data)} is not a multiple of the "
                f"word size {self.arch.word_bytes}"
            )
        return np.frombuffer(data, dtype=self._dtype).astype(np.uint64)

    def byteswapped(self, data: bytes) -> bytes:
        """Return ``data`` with every word's bytes reversed.

        This is the raw operation behind little<->big endian conversion of
        a dumped memory area; per-tag fix-ups (strings keep their byte
        order) are applied on top by :mod:`repro.checkpoint.convert`.
        """
        arr = np.frombuffer(data, dtype=self._dtype)
        return arr.byteswap().tobytes()

    def word_count(self, data: bytes) -> int:
        """Number of whole words in a native byte stream."""
        return len(data) // self.arch.word_bytes
