"""Minor collection: copy live young data into the major heap (§2.4.2).

"A minor garbage collection ... copies the live values from the young
generation into the old generation, using free memory obtained from the
freelist of the old generation.  The live values are those reachable from
the globals, the stacks, the roots, or the refstable.  The space used for
the young generation is recycled after a minor garbage collection, and
the refstable becomes empty."

The copy uses forwarding markers written over the moved blocks: a header
of 0 means "already moved; field 0 holds the new address" (young blocks
always have at least one field, so a zero header is never a valid young
header).
"""

from __future__ import annotations

from repro.gc.roots import RootProvider
from repro.memory.manager import MemoryManager

#: Header value marking an already-copied young block.
FORWARDED = 0


class MinorCollector:
    """The copying collector for the young generation."""

    def __init__(self, mem: MemoryManager, roots: RootProvider) -> None:
        self.mem = mem
        self.roots = roots
        #: Statistics: number of minor collections performed.
        self.collections = 0
        #: Statistics: words promoted by the last collection.
        self.last_promoted_words = 0
        #: Cumulative words promoted to the major heap.
        self.total_promoted_words = 0

    def collect(self) -> int:
        """Run one minor collection; returns the words promoted."""
        mem = self.mem
        minor = mem.minor
        if minor.is_empty() and not mem.reftable:
            self.collections += 1
            self.last_promoted_words = 0
            return 0

        self._scan_queue: list[int] = []
        promoted_before = mem.heap.allocated_words

        # 1. Roots: registers, stacks, globals, C roots.
        for slot in self.roots.iter_roots():
            v = slot.load()
            nv = self._oldify(v)
            if nv != v:
                slot.store(nv)

        # 2. The reference table: old-to-young pointers.
        for addr in sorted(mem.reftable):
            v = mem.space.load(addr)
            nv = self._oldify(v)
            if nv != v:
                mem.dirty.mark(addr)
                mem.space.store(addr, nv)

        # 3. Transitively copy everything reachable from the copies.
        self._mopup()

        promoted = mem.heap.allocated_words - promoted_before
        mem.reftable.clear()
        minor.reset()
        self.collections += 1
        self.last_promoted_words = promoted
        self.total_promoted_words += promoted
        return promoted

    # -- copying machinery ---------------------------------------------------

    def _oldify(self, v: int) -> int:
        """Copy one young block to the major heap; returns the new value.

        Non-young values pass through unchanged.  Fields are copied raw
        and queued for scanning (breadth-first mop-up), like OCaml's
        ``oldify_one``/``oldify_mopup`` pair.
        """
        mem = self.mem
        if not (mem.values.is_block(v) and mem.minor.contains(v)):
            return v
        hd = mem.header_of(v)
        if hd == FORWARDED:
            return mem.field(v, 0)
        headers = mem.headers
        tag = headers.tag(hd)
        size = headers.size(hd)
        new_block = mem.alloc_shr(size, tag)
        # Promotion copies bypass the write barrier (raw stores below);
        # mark the whole promoted block — header included — dirty so a
        # delta checkpoint captures it.  ``_mopup`` writes land inside
        # this same range.
        mem.mark_dirty_range(new_block - mem.arch.word_bytes, size + 1)
        for i in range(size):
            # Raw copy; init_field records any young pointers copied into
            # the major heap so _mopup can be interrupted safely.
            mem.space.store(
                new_block + i * mem.arch.word_bytes, mem.field(v, i)
            )
        # Forward the old block.
        mem.space.store(v - mem.arch.word_bytes, FORWARDED)
        mem.space.store(v, new_block)
        if headers.scannable(hd):
            self._scan_queue.append(new_block)
        return new_block

    def _mopup(self) -> None:
        """Scan promoted blocks, oldifying the young values they carry."""
        mem = self.mem
        wb = mem.arch.word_bytes
        queue = self._scan_queue
        while queue:
            block = queue.pop()
            size = mem.size_of(block)
            for i in range(size):
                v = mem.space.load(block + i * wb)
                if mem.values.is_block(v) and mem.minor.contains(v):
                    mem.space.store(block + i * wb, self._oldify(v))
