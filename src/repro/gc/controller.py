"""GC pacing: one major slice after every minor collection (§2.4.2-2.4.3).

"The amount of marking (resp. sweeping) to do in a mark (resp. sweep)
slice is determined by the total size of the live values being promoted
from the young generation in the preceding minor collection: the more
promotions, the more garbage collection work must be done."

There is no dedicated GC thread: the mutator that triggered the failed
young allocation performs the minor collection and the following major
slice itself (§2.4.3).
"""

from __future__ import annotations

from repro.gc.major import MajorCollector, Phase
from repro.gc.minor import MinorCollector
from repro.gc.roots import RootProvider
from repro.memory.manager import MemoryManager

#: Minimum slice size in words, so progress is made even when little was
#: promoted.
MIN_SLICE_WORDS = 512

#: Slice work per promoted/allocated word.  Plays the role of OCaml's
#: ``space_overhead`` knob: higher values collect more aggressively.
DEFAULT_SPEED = 1.5


class GCController:
    """Drives minor collections and paces major slices."""

    def __init__(
        self,
        mem: MemoryManager,
        roots: RootProvider,
        speed: float = DEFAULT_SPEED,
        grayvals_limit: int | None = None,
    ) -> None:
        self.mem = mem
        self.roots = roots
        self.speed = speed
        self.minor = MinorCollector(mem, roots)
        kwargs = {}
        if grayvals_limit is not None:
            kwargs["grayvals_limit"] = grayvals_limit
        self.major = MajorCollector(mem, roots, **kwargs)
        #: When True, collections are suppressed entirely.  Restart sets
        #: this while memory is being rebuilt (paper §3.2.2: "during
        #: restart the garbage collector should not work").
        self.disabled = False
        mem.minor_gc_hook = self.minor_collection

    # -- entry points -----------------------------------------------------------

    def minor_collection(self) -> int:
        """Minor collection + one paced major slice; returns promoted words."""
        if self.disabled:
            raise RuntimeError("allocation required a GC while GC is disabled")
        promoted = self.minor.collect()
        self.major_slice(promoted)
        return promoted

    def major_slice(self, promoted_words: int) -> int:
        """One slice of major work, paced by promotion volume."""
        if self.disabled:
            return 0
        mem = self.mem
        pending = promoted_words + mem.heap.allocated_words
        mem.heap.allocated_words = 0
        work = max(MIN_SLICE_WORDS, int(pending * self.speed))
        if self.major.phase is Phase.IDLE:
            # A new cycle may only start while the young generation is
            # empty; that is guaranteed right after a minor collection.
            if mem.minor.is_empty():
                self.major.start_cycle()
            else:
                return 0
        return self.major.run_slice(work)

    def full_major(self) -> None:
        """Run a complete major cycle (minor first, as OCaml does)."""
        if self.disabled:
            raise RuntimeError("GC is disabled")
        self.minor.collect()
        self.major.finish_cycle()
        if self.mem.minor.is_empty():
            self.major.start_cycle()
            self.major.finish_cycle()

    def compact(self):
        """Full compaction: see :func:`repro.gc.compact.compact`."""
        from repro.gc.compact import compact

        return compact(self)

    def stat(self) -> dict[str, int]:
        """Counters in the spirit of OCaml's ``Gc.stat``."""
        heap = self.mem.heap
        return {
            "minor_collections": self.minor.collections,
            "major_cycles": self.major.cycles_completed,
            "promoted_words": self.minor.total_promoted_words,
            "heap_words": heap.total_words(),
            "live_words": heap.live_words(),
            "free_words": heap.free_words(),
            "heap_chunks": len(heap.chunks),
            "minor_used_words": self.mem.minor.used_words,
            "mark_slices": self.major.mark_slices,
            "sweep_slices": self.major.sweep_slices,
        }

    def compact_freelist(self) -> None:
        """Merge adjacent free blocks and rebuild the freelist.

        A safety valve against fragmentation between sweep cycles; called
        by the heap-pressure path in the VM before growing the heap.  Only
        legal while the major collector is idle — mid-cycle the sweep
        pointer and allocation colors depend on the block layout.
        """
        if self.major.phase is not Phase.IDLE:
            raise RuntimeError("cannot compact while a major cycle is active")
        mem = self.mem
        headers = mem.headers
        from repro.memory.blocks import Color

        for chunk in mem.heap.chunks:
            words = chunk.area.words
            i = 0
            n = len(words)
            while i < n:
                hd = words[i]
                color = headers.color(hd)
                size = headers.size(hd)
                if color is Color.BLUE or (color is Color.WHITE and size == 0):
                    # Merge this free/fragment block with any free or
                    # fragment blocks that follow it.
                    end = i + 1 + size
                    merged = size
                    hm = chunk.header_map
                    while end < n:
                        nhd = words[end]
                        ncol = headers.color(nhd)
                        nsz = headers.size(nhd)
                        if ncol is Color.BLUE or (
                            ncol is Color.WHITE and nsz == 0
                        ):
                            if hm is not None:
                                hm[end] = 0
                            merged += 1 + nsz
                            end += 1 + nsz
                        else:
                            break
                    final_color = Color.BLUE if merged >= 1 else Color.WHITE
                    words[i] = headers.make(0, final_color, merged)
                    i = end
                else:
                    i += 1 + size
        mem.heap.rebuild_freelist()
