"""Stop-the-world heap compaction (OCaml's ``Gc.compact``).

Slides every live block into a minimal set of fresh chunks and fixes
all pointers — the same classify-and-relocate machinery the restart
path uses for cross-word-size checkpoints, applied within one VM.  Its
practical payoff here is the paper's file-size concern: a compacted
heap dumps into a smaller checkpoint (see the A5 ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.memory.blocks import Color
from repro.memory.heap import Heap

if TYPE_CHECKING:  # pragma: no cover
    from repro.gc.controller import GCController


@dataclass(frozen=True)
class CompactionStats:
    """Before/after sizes of one compaction."""

    words_before: int
    words_after: int
    chunks_before: int
    chunks_after: int
    blocks_moved: int

    @property
    def words_reclaimed(self) -> int:
        return self.words_before - self.words_after


def compact(gc: "GCController") -> CompactionStats:
    """Compact the major heap; returns the stats.

    Runs a full major collection first, so liveness is exact; the young
    generation is empty afterwards, which also guarantees the reference
    table is empty and no young-to-old pointers complicate the move.
    """
    if gc.disabled:
        raise RuntimeError("cannot compact while GC is disabled")
    gc.full_major()
    mem = gc.mem
    heap = mem.heap
    headers = mem.headers
    values = mem.values
    wb = mem.arch.word_bytes

    words_before = heap.total_words()
    chunks_before = len(heap.chunks)

    # 1. Snapshot the live blocks (payload copied out of the old chunks).
    live: list[tuple[int, int, int, list[int]]] = []  # (old_ptr, tag, size, payload)
    for chunk in heap.chunks:
        words = chunk.area.words
        i = 0
        n = len(words)
        while i < n:
            hd = words[i]
            size = headers.size(hd)
            color = headers.color(hd)
            if color is not Color.BLUE and size > 0:
                old_ptr = chunk.base + (i + 1) * wb
                live.append(
                    (old_ptr, headers.tag(hd), size, words[i + 1 : i + 1 + size])
                )
            i += 1 + size

    # 2. Replace the heap with a fresh one and re-allocate densely.
    for chunk in list(heap.chunks):
        mem.space.unmap(chunk.area)
    new_heap = Heap(
        mem.space,
        mem.arch,
        heap._heap_base,
        heap._chunk_stride,
        chunk_words=heap.chunk_words,
    )
    # Keep dirty-region tracking attached: the fresh chunks mark
    # themselves fully dirty as they are added, and stale regions of
    # now-unmapped chunks are clipped away at capture time.
    new_heap.dirty_regions = heap.dirty_regions
    new_heap.dirty_shift = heap.dirty_shift
    mem.heap = new_heap
    relocation: dict[int, int] = {}
    for old_ptr, tag, size, payload in live:
        block = new_heap.alloc(size, tag, Color.WHITE)
        for j, w in enumerate(payload):
            new_heap.set_field(block, j, w)
        relocation[old_ptr] = block

    # 3. Fix pointers: every root, then every field of every scannable
    #    block (pointers to non-heap areas pass through untouched).
    def fix(v: int) -> int:
        if values.is_block(v):
            return relocation.get(v, v)
        return v

    for slot in gc.roots.iter_roots():
        v = slot.load()
        nv = fix(v)
        if nv != v:
            slot.store(nv)
    for block in relocation.values():
        hd = new_heap.load_header(block)
        if headers.scannable(hd):
            for j in range(headers.size(hd)):
                new_heap.set_field(block, j, fix(new_heap.field(block, j)))

    return CompactionStats(
        words_before=words_before,
        words_after=new_heap.total_words(),
        chunks_before=chunks_before,
        chunks_after=len(new_heap.chunks),
        blocks_moved=len(live),
    )
