"""Garbage collection: generational copying + incremental mark-sweep.

Reproduces the collector the paper describes in §2.4: a minor (copying)
collection empties the young generation into the major heap; a major
collection reclaims the old generation with Dijkstra-style incremental
mark-sweep, one slice after every minor collection, paced by the volume
of promoted data.
"""

from repro.gc.roots import Slot, AttrSlot, AreaSlot, RootProvider
from repro.gc.minor import MinorCollector
from repro.gc.major import MajorCollector, Phase
from repro.gc.controller import GCController

__all__ = [
    "Slot",
    "AttrSlot",
    "AreaSlot",
    "RootProvider",
    "MinorCollector",
    "MajorCollector",
    "Phase",
    "GCController",
]
