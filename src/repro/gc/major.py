"""Major collection: incremental mark-sweep over the old generation (§2.4.2).

A cycle is a sequence of *mark slices* followed by *sweep slices*:

* marking uses the gray-value stack ``grayvals`` for mostly-depth-first
  traversal; if the stack overflows the heap becomes *impure* and a
  rescan from the marking pointer ``markhp`` finds the gray blocks left
  behind;
* sweeping walks the chunks linearly, turning white blocks blue (onto the
  freelist, merging adjacent dead blocks) and black blocks white.

The collector never runs on its own thread — slices are executed by the
allocating mutator via the :class:`~repro.gc.controller.GCController`.
"""

from __future__ import annotations

import enum

from repro.gc.roots import RootProvider
from repro.memory.blocks import Color
from repro.memory.heap import NULL
from repro.memory.manager import MemoryManager

#: Default capacity of the gray-value stack before the heap turns impure.
DEFAULT_GRAYVALS_LIMIT = 2048


class Phase(enum.Enum):
    """Major collector phase."""

    IDLE = "idle"
    MARK = "mark"
    SWEEP = "sweep"


class MajorCollector:
    """Incremental mark-sweep collector for the major heap."""

    def __init__(
        self,
        mem: MemoryManager,
        roots: RootProvider,
        grayvals_limit: int = DEFAULT_GRAYVALS_LIMIT,
    ) -> None:
        self.mem = mem
        self.roots = roots
        self.phase = Phase.IDLE
        #: Stack of gray block pointers (paper §2.4.1, ``grayvals``).
        self.grayvals: list[int] = []
        self.grayvals_limit = grayvals_limit
        #: False when grayvals overflowed and gray blocks may hide in the
        #: heap below ``markhp`` (paper: "the heap becomes impure").
        self.heap_pure = True
        #: Chunk index / word index of the heap rescan pointer.
        self._mark_chunk = 0
        self._mark_word = 0
        #: Sweep position.
        self._sweep_chunk = 0
        self._sweep_word = 0
        #: Statistics.
        self.cycles_completed = 0
        self.mark_slices = 0
        self.sweep_slices = 0
        self.words_swept_free = 0
        mem.major_gc = self

    # -- state predicates ----------------------------------------------------

    @property
    def is_marking(self) -> bool:
        """True while the collector is in its mark phase."""
        return self.phase is Phase.MARK

    def allocation_color(self, block: int) -> Color:
        """Color for a block freshly allocated in the major heap.

        Black while marking (new objects are trivially live for this
        cycle).  While sweeping: blocks at or beyond the sweep pointer
        must be black so the sweeper will repaint them white rather than
        free them; blocks behind it are already swept and stay white.
        """
        if self.phase is Phase.MARK:
            return Color.BLACK
        if self.phase is Phase.SWEEP and not self._sweep_passed(block):
            return Color.BLACK
        return Color.WHITE

    def _sweep_passed(self, block: int) -> bool:
        chunks = self.mem.heap.chunks
        if self._sweep_chunk >= len(chunks):
            return True
        chunk = chunks[self._sweep_chunk]
        header_addr = block - self.mem.arch.word_bytes
        for i, c in enumerate(chunks):
            if c.base <= header_addr < c.end:
                if i < self._sweep_chunk:
                    return True
                if i > self._sweep_chunk:
                    return False
                return header_addr < chunk.base + self._sweep_word * self.mem.arch.word_bytes
        return False

    # -- cycle control -----------------------------------------------------------

    def start_cycle(self) -> None:
        """Begin a new cycle: gray all roots, enter the mark phase.

        Must only be called when the young generation is empty (i.e.
        immediately after a minor collection), which is what keeps the
        incremental invariant sound.
        """
        if self.phase is not Phase.IDLE:
            raise RuntimeError("major GC cycle already in progress")
        if not self.mem.minor.is_empty():
            raise RuntimeError("cannot start a major cycle with live young data")
        self.phase = Phase.MARK
        self.heap_pure = True
        self._mark_chunk = 0
        self._mark_word = 0
        for slot in self.roots.iter_roots():
            self.darken(slot.load())

    def darken(self, v: int) -> None:
        """``Darken``: gray a white major-heap block and remember it."""
        mem = self.mem
        if not (mem.values.is_block(v) and mem.heap.is_in_heap(v)):
            return
        hd = mem.heap.load_header(v)
        if mem.headers.color(hd) is Color.WHITE:
            mem.heap.store_header(
                v, mem.headers.with_color(hd, Color.GRAY)
            )
            if len(self.grayvals) < self.grayvals_limit:
                self.grayvals.append(v)
            else:
                # Stack overflow: leave the block gray in the heap; a
                # rescan pass will find it (paper: "a second marking pass
                # is needed").
                self.heap_pure = False

    # -- mark phase ---------------------------------------------------------------

    def mark_slice(self, work: int) -> int:
        """Run up to ``work`` words of marking; returns work done."""
        mem = self.mem
        headers = mem.headers
        heap = mem.heap
        done = 0
        self.mark_slices += 1
        while done < work:
            if self.grayvals:
                block = self.grayvals.pop()
                hd = heap.load_header(block)
                size = headers.size(hd)
                if headers.scannable(hd):
                    for i in range(size):
                        self.darken(heap.field(block, i))
                heap.store_header(
                    block, headers.with_color(hd, Color.BLACK)
                )
                done += size + 1
                continue
            if not self.heap_pure:
                # Rescan for gray blocks missed by the overflowed stack.
                self.heap_pure = True
                self._mark_chunk = 0
                self._mark_word = 0
            advanced = self._rescan_step(work - done)
            done += advanced
            if advanced == 0:
                # Marking pointer reached the end of the heap, the stack
                # is empty and the heap is pure: the mark phase is over.
                self._finish_mark()
                break
        return done

    def _rescan_step(self, budget: int) -> int:
        """Advance ``markhp`` looking for gray blocks; returns words walked."""
        mem = self.mem
        heap = mem.heap
        headers = mem.headers
        walked = 0
        chunks = heap.chunks
        while self._mark_chunk < len(chunks) and walked < max(budget, 1):
            chunk = chunks[self._mark_chunk]
            words = chunk.area.words
            if self._mark_word >= len(words):
                self._mark_chunk += 1
                self._mark_word = 0
                continue
            hd = words[self._mark_word]
            size = headers.size(hd)
            if headers.color(hd) is Color.GRAY:
                block = chunk.base + (self._mark_word + 1) * mem.arch.word_bytes
                if len(self.grayvals) < self.grayvals_limit:
                    self.grayvals.append(block)
                    walked += 1
                    self._mark_word += 1 + size
                    continue
                self.heap_pure = False
                return walked + 1  # stack full again; try later
            self._mark_word += 1 + size
            walked += 1
        return walked

    def _finish_mark(self) -> None:
        self.phase = Phase.SWEEP
        self._sweep_chunk = 0
        self._sweep_word = 0

    # -- sweep phase -----------------------------------------------------------------

    def sweep_slice(self, work: int) -> int:
        """Run up to ``work`` words of sweeping; returns work done."""
        mem = self.mem
        heap = mem.heap
        headers = mem.headers
        done = 0
        self.sweep_slices += 1
        chunks = heap.chunks
        while done < work and self._sweep_chunk < len(chunks):
            chunk = chunks[self._sweep_chunk]
            words = chunk.area.words
            if self._sweep_word >= len(words):
                self._sweep_chunk += 1
                self._sweep_word = 0
                continue
            i = self._sweep_word
            hd = words[i]
            size = headers.size(hd)
            color = headers.color(hd)
            if color is Color.WHITE:
                # Dead: merge with following dead/fragment blocks, then
                # free as one blue block.
                end = i + 1 + size
                merged = size
                hm = chunk.header_map
                while end < len(words):
                    nhd = words[end]
                    if headers.color(nhd) is not Color.WHITE:
                        break
                    if hm is not None:
                        hm[end] = 0
                    merged += 1 + headers.size(nhd)
                    end += 1 + headers.size(nhd)
                # Direct header write (no store_header): mark its dirty
                # region by hand for incremental checkpoints.
                heap.dirty_regions.add(
                    (chunk.base + i * mem.arch.word_bytes) >> heap.dirty_shift
                )
                words[i] = headers.make(0, Color.WHITE, merged)
                if merged >= 1:
                    block = chunk.base + (i + 1) * mem.arch.word_bytes
                    heap.free_block(block)
                # A zero-sized run stays behind as a white fragment; it
                # cannot carry a freelist link.
                self.words_swept_free += merged + 1
                done += merged + 1
                self._sweep_word = end
            elif color is Color.BLACK:
                heap.dirty_regions.add(
                    (chunk.base + i * mem.arch.word_bytes) >> heap.dirty_shift
                )
                words[i] = headers.with_color(hd, Color.WHITE)
                done += size + 1
                self._sweep_word = i + 1 + size
            else:
                # BLUE (already free) or GRAY (impossible after marking).
                done += size + 1
                self._sweep_word = i + 1 + size
        if self._sweep_chunk >= len(chunks):
            self._finish_sweep()
        return done

    def _finish_sweep(self) -> None:
        self.phase = Phase.IDLE
        self.cycles_completed += 1

    # -- driving ----------------------------------------------------------------------

    def run_slice(self, work: int) -> int:
        """Run one slice of whatever phase is active; returns work done."""
        if self.phase is Phase.MARK:
            return self.mark_slice(work)
        if self.phase is Phase.SWEEP:
            return self.sweep_slice(work)
        return 0

    def finish_cycle(self) -> None:
        """Run the current cycle to completion (used by full_major)."""
        guard = 0
        while self.phase is not Phase.IDLE:
            self.run_slice(1 << 20)
            guard += 1
            if guard > 1 << 16:  # pragma: no cover - corruption guard
                raise RuntimeError("major GC failed to terminate")
