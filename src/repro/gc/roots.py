"""Root enumeration (paper §2.4.1: "roots — all the mutator's pointers").

The collectors see roots as *slots*: locations holding a value that can
be read and overwritten (a minor collection moves objects, so every root
must be updatable).  Root sources are the interpreter registers, all
thread stacks, the global-data pointer and registered C-global slots; the
VM assembles them through the :class:`RootProvider` protocol.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol

from repro.memory.layout import MemoryArea


class Slot(Protocol):
    """A mutable location holding one VM value."""

    def load(self) -> int:
        """Read the value."""
        ...

    def store(self, value: int) -> None:
        """Overwrite the value."""
        ...


class AttrSlot:
    """A root held in a Python attribute (e.g. the ACCU register)."""

    __slots__ = ("obj", "name")

    def __init__(self, obj: object, name: str) -> None:
        self.obj = obj
        self.name = name

    def load(self) -> int:
        return getattr(self.obj, self.name)

    def store(self, value: int) -> None:
        setattr(self.obj, self.name, value)


class AreaSlot:
    """A root held in a word of a memory area (e.g. a stack slot)."""

    __slots__ = ("area", "index")

    def __init__(self, area: MemoryArea, index: int) -> None:
        self.area = area
        self.index = index

    def load(self) -> int:
        return self.area.words[self.index]

    def store(self, value: int) -> None:
        self.area.words[self.index] = value


class ListSlot:
    """A root held in a Python list cell (used by the channel manager)."""

    __slots__ = ("lst", "index")

    def __init__(self, lst: list[int], index: int) -> None:
        self.lst = lst
        self.index = index

    def load(self) -> int:
        return self.lst[self.index]

    def store(self, value: int) -> None:
        self.lst[self.index] = value


class RootProvider(Protocol):
    """Anything that can enumerate GC root slots (the VM implements this)."""

    def iter_roots(self) -> Iterator[Slot]:
        """Yield every root slot of the mutator."""
        ...


def stack_slots(area: MemoryArea, sp: int) -> Iterable[AreaSlot]:
    """Slots for the used region of a downward-growing stack.

    Return addresses and saved environments live among the values; the
    collectors filter by pointer classification, exactly as OCVM's stack
    scan does.
    """
    first = (sp - area.base) // (area.word_bytes)
    for i in range(first, len(area.words)):
        yield AreaSlot(area, i)
