"""The paper's test applications, as parameterized MiniML sources.

§5.2.2: "We have two test applications for C/R measurements.  The
applications are matrix multiplication and insertion sort."  Matrix
multiplication is O(n^3) time / O(n^2) heap with a flat stack; the
insertion sort from the OCaml user's guide is recursive, so its *stack*
grows during the run.  A third, allocation-heavy workload is provided
for sweeping checkpoint sizes without paying cubic compute (used by the
restart-time figures, where only the image size matters).
"""

from __future__ import annotations


def matmul_source(n: int, checkpoint: bool = True) -> str:
    """The paper's Figure 8 matrix multiplication.

    With ``checkpoint=True`` a user-initiated checkpoint is taken
    between the two halves of the outer loop — mid-computation, with
    all three matrices live on the heap.
    """
    half = max(n // 2, 1)
    ck = "checkpoint ();;" if checkpoint else ""
    return f"""
let n = {n};;
let make_matrix rows cols init =
  let m = Array.make rows [||] in
  begin
    for i = 0 to rows - 1 do m.(i) <- Array.make cols init done;
    m
  end;;
let mat1 = make_matrix n n 1;;
let mat2 = make_matrix n n 2;;
let mat3 = make_matrix n n 0;;
let multiply_rows lo hi =
  for i = lo to hi do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        mat3.(i).(j) <- mat3.(i).(j) + (mat1.(i).(k) * mat2.(k).(j))
      done
    done
  done;;
multiply_rows 0 ({half} - 1);;
{ck}
multiply_rows {half} (n - 1);;
print_int mat3.(0).(0);;
print_string " ";;
print_int mat3.(n - 1).(n - 1)
"""


def matmul_expected(n: int) -> bytes:
    """Expected output of :func:`matmul_source` (every entry is 2n)."""
    return f"{2 * n} {2 * n}".encode()


def insertion_sort_source(n: int, checkpoint: bool = True) -> str:
    """The paper's Figure 9 insertion sort over pseudo-random data.

    The sort is deliberately *not* tail-recursive; when
    ``checkpoint=True`` the checkpoint fires at the deepest point of the
    recursion, capturing a stack of ~``n`` frames (the paper's "the
    stack grows during runtime due to many recursive calls").
    """
    ck = "(if d = n then checkpoint ())" if checkpoint else "()"
    return f"""
let n = {n};;
let seed = ref 12345;;
let next_random () =
  begin
    seed := (!seed * 75 + 74) mod 65537;
    !seed mod 1000
  end;;
let rec build k acc = if k = 0 then acc else build (k - 1) (next_random () :: acc);;
let data = build n [];;
let rec insert elt lst =
  match lst with
  | [] -> [elt]
  | head :: tail -> if elt <= head then elt :: lst else head :: insert elt tail;;
let rec sort lst d =
  match lst with
  | [] -> begin {ck}; [] end
  | head :: tail -> insert head (sort tail (d + 1));;
let sorted = sort data 0;;
let rec is_sorted l =
  match l with
  | [] -> true
  | h :: t -> (match t with [] -> true | h2 :: _ -> if h <= h2 then is_sorted t else false);;
let rec len l = match l with [] -> 0 | _ :: t -> 1 + len t;;
if is_sorted sorted then print_string "sorted " else print_string "UNSORTED ";;
print_int (len sorted)
"""


def insertion_sort_expected(n: int) -> bytes:
    """Expected output of :func:`insertion_sort_source`."""
    return b"sorted " + str(n).encode()


def alloc_source(total_words: int, checkpoint: bool = True) -> str:
    """Allocation-heavy workload: fill the heap to ~``total_words``.

    Builds rows of 4096-word arrays threaded into a list so everything
    stays live, then checkpoints.  Used by the restart-time and
    breakdown figures, where the knob is the checkpoint *size*.
    """
    row_words = 4096
    rows = max(total_words // row_words, 1)
    ck = "checkpoint ();;" if checkpoint else ""
    return f"""
let rows = {rows};;
let keep = ref [];;
let () =
  for i = 1 to rows do
    let a = Array.make {row_words} i in
    keep := a :: !keep
  done;;
{ck}
let rec count l = match l with [] -> 0 | _ :: t -> 1 + count t;;
let rec first l = match l with [] -> 0 | h :: _ -> h.(0);;
print_int (count !keep);;
print_string " ";;
print_int (first !keep)
"""


def alloc_expected(total_words: int) -> bytes:
    rows = max(total_words // 4096, 1)
    return f"{rows} {rows}".encode()


def string_heavy_source(total_words: int, checkpoint: bool = True) -> str:
    """Heap dominated by strings and boxed floats.

    Byte-oriented payloads are exactly what a cross-endianness restart
    must repack word by word (paper §3.2.1), so this workload makes the
    endianness-conversion gap of Figure 12 visible — an integer-only
    heap converts almost for free, because word values are re-decoded
    wholesale.
    """
    # Each iteration allocates a ~256-byte string (64+1 words on 32-bit)
    # and a boxed float (3 words); aim for ~total_words overall.
    iters = max(total_words // 70, 1)
    ck = "checkpoint ();;" if checkpoint else ""
    return f"""
let iters = {iters};;
let keep = ref [];;
let fkeep = ref [];;
let () =
  for i = 1 to iters do
    let s = String.make 255 'a' in
    begin
      s.[0] <- 'x';
      keep := s :: !keep;
      fkeep := (float_of_int i *. 1.5) :: !fkeep
    end
  done;;
{ck}
let rec count l = match l with [] -> 0 | _ :: t -> 1 + count t;;
print_int (count !keep);;
print_string " ";;
print_int (count !fkeep)
"""


def string_heavy_expected(total_words: int) -> bytes:
    iters = max(total_words // 70, 1)
    return f"{iters} {iters}".encode()
