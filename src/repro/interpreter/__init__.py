"""The byte-code interpreter (paper §2.5).

A ZINC-style accumulator machine with four abstract registers — PC, SP,
ACCU and ENV (plus ``extra_args``) — executing one byte-code instruction
per dispatch.  Pending events (checkpoint requests, thread preemption)
are checked before every instruction fetch, making every instruction
boundary a safe point (paper §3.1.2).
"""

from repro.interpreter.signals import PendingSet
from repro.interpreter.registers import Registers
from repro.interpreter.primitives import (
    PrimitiveTable,
    BlockThread,
    ExitProgram,
    build_standard_table,
)
from repro.interpreter.interpreter import Interpreter

__all__ = [
    "PendingSet",
    "Registers",
    "PrimitiveTable",
    "BlockThread",
    "ExitProgram",
    "build_standard_table",
    "Interpreter",
]
