"""The ZINC interpreter loop.

Fetch/decode/execute over the code image, with the paper's safe-point
discipline: pending events (checkpoint flag, reschedule, stop) are
examined *between* byte-code instructions only, so a checkpoint can
never capture a half-executed instruction (paper §3.1.2, Figure 3).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError, MemoryError_, VMRuntimeError
from repro.interpreter.primitives import (
    ArgsView,
    BlockThread,
    VMExceptionRaise,
    YieldNode,
)
from repro.interpreter.registers import Registers
from repro.memory.blocks import CLOSURE_TAG
from repro.threads.thread import EXIT_SENTINEL, VMThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine


class _ProgramStop(Exception):
    """Internal: the STOP instruction was executed."""


class Interpreter:
    """Executes byte-code on behalf of the current VM thread."""

    def __init__(self, vm: "VirtualMachine") -> None:
        self.vm = vm
        mem = vm.mem
        self._values = mem.values
        self._mem = mem
        self._wb = mem.arch.word_bytes
        self._word_mask = mem.arch.word_mask
        self._shift_mask = mem.arch.bits - 1
        # Live registers of the current thread.
        self.accu: int = self._values.val_unit
        self.env: int = mem.atoms.atom(0)
        self.pc: int = 0  # code unit index
        self.extra_args: int = 0
        #: Innermost trap-frame address (0 = no handler installed).
        self.trapsp: int = 0
        self.stack = vm.sched.current.stack if vm.sched.current else None
        #: Total instructions dispatched (drives the preemption timer and
        #: the benchmark instruction counts).
        self.instructions = 0
        self._countdown = vm.sched.quantum
        self._units = vm.code.units
        self._handlers = self._build_handlers()
        #: Lazily built fast-tier code (operand-bound closures); see
        #: :mod:`repro.interpreter.dispatch`.
        self._fast = None
        #: Optional per-instruction hook ``fn(interp, pc, op)`` — install
        #: before run(); see :mod:`repro.tracing`.
        self.trace_hook = None

    # -- code addressing -------------------------------------------------------

    def code_addr(self, index: int) -> int:
        """Code unit index -> code address value."""
        return self.vm.code_base + 4 * index

    def code_index(self, addr: int) -> int:
        """Code address value -> code unit index."""
        idx, rem = divmod(addr - self.vm.code_base, 4)
        if rem or not 0 <= idx < len(self.vm.code.units):
            raise VMRuntimeError(f"bad code address {addr:#x}")
        return idx

    # -- register save/restore (thread switching, checkpointing) ----------------

    def snapshot_registers(self) -> Registers:
        """Current registers in checkpoint form (pc as code address)."""
        return Registers(
            pc=self.code_addr(self.pc),
            sp=self.stack.sp,
            accu=self.accu,
            env=self.env,
            extra_args=self.extra_args,
        )

    def save_to_thread(self, t: VMThread) -> None:
        """Park the live registers into a thread record."""
        t.accu = self.accu
        t.env = self.env
        t.pc = self.pc
        t.extra_args = self.extra_args
        t.trapsp = self.trapsp

    def load_from_thread(self, t: VMThread) -> None:
        """Restore the live registers from a thread record."""
        self.accu = t.accu
        self.env = t.env
        self.pc = t.pc
        self.extra_args = t.extra_args
        self.trapsp = t.trapsp
        self.stack = t.stack

    # -- main loop ------------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> str:
        """Run until STOP, exit(), or instruction budget exhaustion.

        Returns ``"stopped"`` for STOP, ``"budget"`` when
        ``max_instructions`` ran out, ``"yielded"`` when a primitive
        suspended the whole VM (cluster recv on an empty mailbox).
        ``exit`` raises
        :class:`~repro.interpreter.primitives.ExitProgram` to the caller
        (the VM façade turns it into a status).

        Dispatch tier selection (``VMConfig.dispatch``): the fast tier
        handles the common case — unbudgeted, untraced runs.  Tracing
        and instruction budgets need a per-instruction test, so those
        runs take the reference loop, which is also the differential
        oracle the fast tier is tested against (``"reference"`` forces
        it unconditionally).
        """
        if (
            max_instructions is None
            and self.trace_hook is None
            and self.vm.config.dispatch == "fast"
        ):
            return self._run_fast()
        return self._run_reference(max_instructions)

    def _run_reference(self, max_instructions: Optional[int] = None) -> str:
        """The canonical fetch/decode/execute loop (the oracle tier)."""
        vm = self.vm
        units = vm.code.units
        pending = vm.pending
        handlers = self._handlers
        n_handlers = len(handlers)
        budget = max_instructions if max_instructions is not None else -1
        try:
            while True:
                if pending.any:
                    if self._handle_pending():
                        return "stopped"
                self._countdown -= 1
                if self._countdown <= 0:
                    self._on_tick()
                if budget >= 0:
                    if budget == 0:
                        return "budget"
                    budget -= 1
                self.instructions += 1
                op = units[self.pc]
                if self.trace_hook is not None:
                    self.trace_hook(self, self.pc, op)
                self.pc += 1
                handler = handlers[op] if 0 <= op < n_handlers else None
                if handler is None:
                    raise BytecodeError(f"illegal opcode {op} at {self.pc - 1}")
                handler()
        except _ProgramStop:
            return "stopped"
        except YieldNode:
            return "yielded"

    def _run_fast(self) -> str:
        """The fast tier: dispatch pre-bound closures by code-unit pc.

        The loop keeps the instruction counter and preemption countdown
        in locals, synchronizing with the canonical fields at every
        safe-point interaction (pending events, quantum ticks, stateful
        kernel entries) and on exit, so checkpoints and thread switches
        observe exactly the state the reference loop would produce at
        the same boundary.
        """
        vm = self.vm
        pending = vm.pending
        fast = self._fast
        if fast is None:
            from repro.interpreter.dispatch import build_fast_code

            fast = self._fast = build_fast_code(self)
        code = fast.handlers
        counts = fast.counts
        countdown = self._countdown
        insns = self.instructions
        pc = self.pc
        try:
            while True:
                if pending.any:
                    self.instructions = insns
                    self._countdown = countdown
                    self.pc = pc
                    if self._handle_pending():
                        return "stopped"
                    pc = self.pc
                    countdown = self._countdown
                n = counts[pc]
                if n == 0:
                    # Stateful entry (batched loop kernel, escape slot,
                    # lazy binder): it does its own canonical accounting
                    # against the live fields, pc included.  Resync the
                    # locals even if it raises (STOP, illegal opcode) so
                    # the exit path below doesn't clobber its updates.
                    self.instructions = insns
                    self._countdown = countdown
                    self.pc = pc
                    try:
                        code[pc]()
                    finally:
                        pc = self.pc
                        insns = self.instructions
                        countdown = self._countdown
                    continue
                countdown -= n
                if countdown <= 0:
                    self._countdown = countdown
                    self._on_tick()
                    countdown = self._countdown
                insns += n
                pc = code[pc]()
        except _ProgramStop:
            return "stopped"
        except YieldNode:
            return "yielded"
        finally:
            # Generic/stateful closures keep self.pc current on the
            # paths that exit the loop; the counters live here.
            self.instructions = insns
            self._countdown = countdown

    def _on_tick(self) -> None:
        """Virtual timer tick: preemption and periodic checkpoint policy."""
        vm = self.vm
        self._countdown = vm.sched.quantum
        if vm.sched.timer_enabled and vm.sched.ever_multithreaded:
            runnable = sum(1 for t in vm.sched.threads.values() if t.is_runnable)
            if runnable > 1:
                vm.pending.request_reschedule()
        if vm.lazy_restore is not None:
            # Background drain: one deferred chunk per quantum, so a
            # lazy restore completes even if the workload never touches
            # most of the heap.
            vm.drain_lazy_restore()
        vm.poll_checkpoint_policy()

    def _handle_pending(self) -> bool:
        """Deal with pending events at this safe point.

        Returns True when the interpreter should stop.
        """
        vm = self.vm
        pending = vm.pending
        if pending.stop:
            pending.clear_stop()
            return True
        if pending.checkpoint:
            pending.clear_checkpoint()
            vm.perform_checkpoint()
        if pending.reschedule:
            pending.clear_reschedule()
            self._switch_thread()
        return False

    def _switch_thread(self) -> None:
        """Round-robin context switch at a safe point."""
        vm = self.vm
        sched = vm.sched
        current = sched.current
        if current is not None:
            self.save_to_thread(current)
        while True:
            t = sched.pick_next()
            if t is None:
                raise VMRuntimeError(
                    "no runnable thread left (main thread vanished?)"
                )
            if self._values.is_block(t.pending_mutex):
                # Schedule-time mutex acquisition (see threads.sync).
                if not vm.mutexes.acquire_for_resume(t):
                    sched.current = t  # advance round-robin fairness
                    continue
            sched.current = t
            sched.switches += 1
            self.load_from_thread(t)
            return

    def _finish_thread(self, result: int) -> None:
        """The current thread's body returned: finish it and switch."""
        sched = self.vm.sched
        t = sched.current
        sched.finish(t, result)
        self._switch_thread()

    # -- dispatch table -----------------------------------------------------------------

    def _build_handlers(self):
        table: list = [None] * 128
        for op in Op:
            table[int(op)] = getattr(self, f"_op_{op.name.lower()}")
        return table

    # -- fetch helpers ---------------------------------------------------------------

    def _fetch(self) -> int:
        u = self._units[self.pc]
        self.pc += 1
        return u

    def _fetch_signed(self) -> int:
        u = self.vm.code.signed_unit(self.pc)
        self.pc += 1
        return u

    # -- control ---------------------------------------------------------------------

    def _op_stop(self) -> None:
        raise _ProgramStop()

    def _op_branch(self) -> None:
        ofs = self.vm.code.signed_unit(self.pc)
        self.pc += ofs

    def _op_branchif(self) -> None:
        if self.accu != self._values.val_false:
            self.pc += self.vm.code.signed_unit(self.pc)
        else:
            self.pc += 1

    def _op_branchifnot(self) -> None:
        if self.accu == self._values.val_false:
            self.pc += self.vm.code.signed_unit(self.pc)
        else:
            self.pc += 1

    def _op_check_signals(self) -> None:
        # Pending events are polled before every instruction; this opcode
        # exists as the explicit safe point the compiler plants in loops,
        # mirroring OCVM's CHECK_SIGNALS (paper Figure 3).
        return None

    # -- stack / accumulator -----------------------------------------------------------

    def _op_acc(self) -> None:
        self.accu = self.stack.peek(self._fetch())

    def _op_push(self) -> None:
        self.stack.push(self.accu)

    def _op_pushacc(self) -> None:
        self.stack.push(self.accu)
        self.accu = self.stack.peek(self._fetch())

    def _op_pop(self) -> None:
        self.stack.popn(self._fetch())

    def _op_assign(self) -> None:
        self.stack.poke(self._fetch(), self.accu)
        self.accu = self._values.val_unit

    # -- environment ---------------------------------------------------------------------

    def _op_envacc(self) -> None:
        self.accu = self._mem.field(self.env, self._fetch())

    def _op_pushenvacc(self) -> None:
        self.stack.push(self.accu)
        self.accu = self._mem.field(self.env, self._fetch())

    def _op_offsetclosure0(self) -> None:
        self.accu = self.env

    # -- constants and globals ---------------------------------------------------------------

    def _op_constint(self) -> None:
        self.accu = self._values.val_int(self._fetch_signed())

    def _op_pushconstint(self) -> None:
        self.stack.push(self.accu)
        self.accu = self._values.val_int(self._fetch_signed())

    def _op_atom(self) -> None:
        self.accu = self._mem.atoms.atom(self._fetch())

    def _op_pushatom(self) -> None:
        self.stack.push(self.accu)
        self.accu = self._mem.atoms.atom(self._fetch())

    def _op_getglobal(self) -> None:
        self.accu = self._mem.field(self.vm.global_data, self._fetch())

    def _op_pushgetglobal(self) -> None:
        self.stack.push(self.accu)
        self.accu = self._mem.field(self.vm.global_data, self._fetch())

    def _op_setglobal(self) -> None:
        self._mem.set_field(self.vm.global_data, self._fetch(), self.accu)
        self.accu = self._values.val_unit

    # -- exceptions ----------------------------------------------------------------------------

    def _op_pushtrap(self) -> None:
        """Install a trap frame: handler pc, previous trapsp, env, extra."""
        ofs = self.vm.code.signed_unit(self.pc)
        handler = self.pc + ofs
        self.pc += 1
        stack = self.stack
        stack.push(self._values.val_int(self.extra_args))
        stack.push(self.env)
        stack.push(self.trapsp)  # a raw stack address (or 0)
        stack.push(self.code_addr(handler))
        self.trapsp = stack.sp

    def _op_poptrap(self) -> None:
        """Remove the innermost trap frame (the protected body finished)."""
        stack = self.stack
        self.trapsp = stack.peek(1)
        stack.popn(4)

    def _op_raise(self) -> None:
        """Raise the exception in ACCU to the innermost handler."""
        self.do_raise(self.accu)

    def do_raise(self, exception: int) -> None:
        """Unwind to the current trap frame, as OCaml's RAISE does.

        With no handler installed the exception is fatal, like an
        uncaught OCaml exception aborting the program.
        """
        if self.trapsp == 0:
            raise VMRuntimeError(
                "uncaught exception: " + self._describe_exception(exception)
            )
        stack = self.stack
        if not (stack.stack_low <= self.trapsp < stack.stack_high):
            raise VMRuntimeError("corrupt trap pointer")  # pragma: no cover
        stack.sp = self.trapsp
        self.pc = self.code_index(stack.pop())
        self.trapsp = stack.pop()
        self.env = stack.pop()
        self.extra_args = self._values.int_val(stack.pop())
        self.accu = exception

    def _describe_exception(self, exception: int) -> str:
        mem = self._mem
        if self._values.is_int(exception):
            return str(self._values.int_val(exception))
        from repro.memory.blocks import STRING_TAG

        # Probe with find_or_none rather than catching SegmentationFault:
        # a corrupt exception value must not pay the raise, and the
        # address-space hit cache stays coherent on the miss.
        header_addr = exception - self._wb
        if (
            exception % self._wb == 0
            and mem.space.find_or_none(header_addr) is not None
            and mem.tag_of(exception) == STRING_TAG
        ):
            try:
                return mem.read_string(exception).decode(errors="replace")
            except MemoryError_:  # pragma: no cover - corrupt size field
                pass
        return f"<block at {exception:#x}>"

    def raise_runtime(self, message: str) -> None:
        """Raise a runtime exception carrying ``message`` as a string.

        Used by failing instructions (division by zero, bounds checks)
        so byte-code programs can catch them with ``try``/``with``.
        """
        self.do_raise(self._mem.make_string(message.encode()))

    # -- application ---------------------------------------------------------------------------

    def _op_push_retaddr(self) -> None:
        ofs = self.vm.code.signed_unit(self.pc)
        target = self.pc + ofs
        self.pc += 1
        self.stack.push(self._values.val_int(self.extra_args))
        self.stack.push(self.env)
        self.stack.push(self.code_addr(target))

    def _op_apply(self) -> None:
        self.extra_args = self._fetch() - 1
        closure = self.accu
        self.pc = self.code_index(self._mem.field(closure, 0))
        self.env = closure

    def _op_appterm(self) -> None:
        nargs = self._fetch()
        slotsize = self._fetch()
        stack = self.stack
        gap = slotsize - nargs
        for i in range(nargs - 1, -1, -1):
            stack.poke(gap + i, stack.peek(i))
        stack.popn(gap)
        closure = self.accu
        self.pc = self.code_index(self._mem.field(closure, 0))
        self.env = closure
        self.extra_args += nargs - 1

    def _op_return(self) -> None:
        self.stack.popn(self._fetch())
        if self.extra_args > 0:
            self.extra_args -= 1
            closure = self.accu
            self.pc = self.code_index(self._mem.field(closure, 0))
            self.env = closure
        else:
            self._pop_frame()

    def _pop_frame(self) -> None:
        ret = self.stack.pop()
        if ret == EXIT_SENTINEL:
            # Bottom of a spawned thread: retire it.
            self.stack.popn(2)  # saved env, saved extra_args
            self._finish_thread(self.accu)
            return
        self.pc = self.code_index(ret)
        self.env = self.stack.pop()
        self.extra_args = self._values.int_val(self.stack.pop())

    def _op_grab(self) -> None:
        n = self._fetch()
        if self.extra_args >= n:
            self.extra_args -= n
            return
        # Partial application: build a closure that restarts here.
        num_args = 1 + self.extra_args
        restart_index = self.pc - 3  # the RESTART preceding this GRAB
        block = self._mem.alloc(num_args + 2, CLOSURE_TAG)
        self._mem.init_field(block, 0, self.code_addr(restart_index))
        self._mem.init_field(block, 1, self.env)
        for i in range(num_args):
            self._mem.init_field(block, i + 2, self.stack.pop())
        self.accu = block
        self._pop_frame()

    def _op_restart(self) -> None:
        env = self.env
        num_args = self._mem.size_of(env) - 2
        self.stack.reserve(num_args)
        for i in range(num_args - 1, -1, -1):
            self.stack.push(self._mem.field(env, i + 2))
        self.env = self._mem.field(env, 1)
        self.extra_args += num_args

    def _op_closure(self) -> None:
        nvars = self._fetch()
        ofs = self.vm.code.signed_unit(self.pc)
        target = self.pc + ofs
        self.pc += 1
        if nvars > 0:
            self.stack.push(self.accu)
        block = self._mem.alloc(1 + nvars, CLOSURE_TAG)
        self._mem.init_field(block, 0, self.code_addr(target))
        for i in range(nvars):
            self._mem.init_field(block, i + 1, self.stack.pop())
        self.accu = block

    # -- blocks -------------------------------------------------------------------------------

    def _op_makeblock(self) -> None:
        size = self._fetch()
        tag = self._fetch()
        if size == 0:
            self.accu = self._mem.atoms.atom(tag)
            return
        block = self._mem.alloc(size, tag)
        # Read accu only after the allocation: a GC may have moved it.
        self._mem.init_field(block, 0, self.accu)
        for i in range(1, size):
            self._mem.init_field(block, i, self.stack.pop())
        self.accu = block

    def _op_getfield(self) -> None:
        self.accu = self._mem.field(self.accu, self._fetch())

    def _op_setfield(self) -> None:
        n = self._fetch()
        self._mem.set_field(self.accu, n, self.stack.pop())
        self.accu = self._values.val_unit

    def _op_vectlength(self) -> None:
        self.accu = self._values.val_int(self._mem.size_of(self.accu))

    def _in_bounds(self, block: int, index: int) -> bool:
        return 0 <= index < self._mem.size_of(block)

    def _op_getvectitem(self) -> None:
        index = self._values.int_val(self.stack.pop())
        if not self._in_bounds(self.accu, index):
            return self.raise_runtime("Invalid_argument: index out of bounds")
        self.accu = self._mem.field(self.accu, index)

    def _op_setvectitem(self) -> None:
        index = self._values.int_val(self.stack.pop())
        value = self.stack.pop()
        if not self._in_bounds(self.accu, index):
            return self.raise_runtime("Invalid_argument: index out of bounds")
        self._mem.set_field(self.accu, index, value)
        self.accu = self._values.val_unit

    def _op_getstringchar(self) -> None:
        index = self._values.int_val(self.stack.pop())
        try:
            byte = self._mem.string_get(self.accu, index)
        except VMRuntimeError:
            return self.raise_runtime("Invalid_argument: index out of bounds")
        self.accu = self._values.val_int(byte)

    def _op_setstringchar(self) -> None:
        index = self._values.int_val(self.stack.pop())
        value = self._values.int_val(self.stack.pop())
        try:
            self._mem.string_set(self.accu, index, value & 0xFF)
        except VMRuntimeError:
            return self.raise_runtime("Invalid_argument: index out of bounds")
        self.accu = self._values.val_unit

    def _op_isint(self) -> None:
        self.accu = self._values.val_bool(bool(self.accu & 1))

    # -- integer arithmetic -------------------------------------------------------------------

    def _op_negint(self) -> None:
        self.accu = self._values.val_int(-self._values.int_val(self.accu))

    def _op_addint(self) -> None:
        v = self._values
        self.accu = v.val_int(v.int_val(self.accu) + v.int_val(self.stack.pop()))

    def _op_subint(self) -> None:
        v = self._values
        self.accu = v.val_int(v.int_val(self.accu) - v.int_val(self.stack.pop()))

    def _op_mulint(self) -> None:
        v = self._values
        self.accu = v.val_int(v.int_val(self.accu) * v.int_val(self.stack.pop()))

    def _op_divint(self) -> None:
        v = self._values
        a = v.int_val(self.accu)
        b = v.int_val(self.stack.pop())
        if b == 0:
            return self.raise_runtime("Division_by_zero")
        q = abs(a) // abs(b)
        self.accu = v.val_int(q if (a >= 0) == (b >= 0) else -q)

    def _op_modint(self) -> None:
        v = self._values
        a = v.int_val(self.accu)
        b = v.int_val(self.stack.pop())
        if b == 0:
            return self.raise_runtime("Division_by_zero")
        q = abs(a) // abs(b)
        q = q if (a >= 0) == (b >= 0) else -q
        self.accu = v.val_int(a - b * q)  # C-style: sign follows dividend

    def _op_andint(self) -> None:
        self.accu &= self.stack.pop()

    def _op_orint(self) -> None:
        self.accu |= self.stack.pop()

    def _op_xorint(self) -> None:
        self.accu = (self.accu ^ self.stack.pop()) | 1

    def _op_lslint(self) -> None:
        v = self._values
        k = v.int_val(self.stack.pop()) & self._shift_mask
        self.accu = v.val_int(v.int_val(self.accu) << k)

    def _op_lsrint(self) -> None:
        k = self._values.int_val(self.stack.pop()) & self._shift_mask
        # Logical shift of the tagged representation, as OCaml does.
        self.accu = ((self.accu & self._word_mask) >> k) | 1

    def _op_asrint(self) -> None:
        k = self._values.int_val(self.stack.pop()) & self._shift_mask
        self.accu = self._mem.arch.asr(self.accu, k) | 1

    def _op_offsetint(self) -> None:
        v = self._values
        self.accu = v.val_int(v.int_val(self.accu) + self._fetch_signed())

    def _op_boolnot(self) -> None:
        v = self._values
        self.accu = v.val_true if self.accu == v.val_false else v.val_false

    # -- comparison ------------------------------------------------------------------------------

    def _op_eq(self) -> None:
        self.accu = self._values.val_bool(self.accu == self.stack.pop())

    def _op_neq(self) -> None:
        self.accu = self._values.val_bool(self.accu != self.stack.pop())

    def _cmp(self, op) -> None:
        v = self._values
        a = v.int_val(self.accu)
        b = v.int_val(self.stack.pop())
        self.accu = v.val_bool(op(a, b))

    def _op_ltint(self) -> None:
        self._cmp(lambda a, b: a < b)

    def _op_leint(self) -> None:
        self._cmp(lambda a, b: a <= b)

    def _op_gtint(self) -> None:
        self._cmp(lambda a, b: a > b)

    def _op_geint(self) -> None:
        self._cmp(lambda a, b: a >= b)

    # -- literal pools -----------------------------------------------------------------------------

    def _op_strlit(self) -> None:
        data = self.vm.code.string_literals[self._fetch()]
        self.accu = self._mem.make_string(data)

    def _op_floatlit(self) -> None:
        x = self.vm.code.float_literals[self._fetch()]
        self.accu = self._mem.make_float(x)

    # -- foreign calls -----------------------------------------------------------------------------

    def _op_c_call(self) -> None:
        nargs = self._fetch()
        pid = self._fetch()
        vm = self.vm
        prim = vm.primitives.by_id(pid)
        if prim.nargs != nargs:
            raise BytecodeError(
                f"{prim.name} expects {prim.nargs} args, C_CALL passed {nargs}"
            )
        roots = vm.temp_roots
        base = len(roots)
        roots.append(self.accu)
        for i in range(nargs - 1):
            roots.append(self.stack.peek(i))
        view = ArgsView(roots, base, nargs)
        blocked = False
        thrown: int | None = None
        try:
            result = prim.fn(vm, view)
        except BlockThread as b:
            result = b.result
            blocked = True
        except VMExceptionRaise as e:
            result = self._values.val_unit
            thrown = e.value
        except YieldNode:
            # Suspend the whole VM: rewind to the C_CALL so the primitive
            # re-executes on resume; arguments stay on the stack.
            self.pc -= 3
            raise
        finally:
            del roots[base:]
        self.stack.popn(nargs - 1)
        self.accu = result
        if thrown is not None:
            return self.do_raise(thrown)
        if blocked:
            vm.pending.request_reschedule()
