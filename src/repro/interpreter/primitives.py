"""C-call primitives: the VM's foreign function layer.

Byte-code invokes primitives through ``C_CALL nargs prim_id``; the table
of primitives is fixed, so a program image referencing primitive ids is
portable (the checkpoint stores the code digest, guaranteeing both sides
agree).

GC safety: a primitive's arguments live in the VM's *temporary root*
array for the duration of the call.  Any allocation inside a primitive
may move young blocks, so primitives must re-read their arguments
through the :class:`ArgsView` after allocating — exactly the discipline
``CAMLparam``/``CAMLlocal`` imposes on real OCaml C stubs.
"""

from __future__ import annotations

import math
from typing import Callable, TYPE_CHECKING

from repro.errors import BytecodeError, PrimitiveError

if TYPE_CHECKING:  # pragma: no cover
    from repro.vm import VirtualMachine


class BlockThread(Exception):
    """Raised by a primitive that blocked the current thread.

    ``result`` is the value the C call produces once the thread resumes;
    the interpreter completes the call with it and then switches away.
    """

    def __init__(self, result: int) -> None:
        super().__init__("thread blocked")
        self.result = result


class ExitProgram(Exception):
    """Raised by the ``exit`` primitive to terminate the whole program."""

    def __init__(self, status: int) -> None:
        super().__init__(f"exit {status}")
        self.status = status


class VMExceptionRaise(Exception):
    """Raised by a primitive to throw a *VM-level* exception.

    The interpreter completes the C call's stack bookkeeping, then
    unwinds to the innermost trap frame (or aborts if none is
    installed), exactly as the RAISE instruction would.
    """

    def __init__(self, value: int) -> None:
        super().__init__("VM exception")
        self.value = value


class YieldNode(Exception):
    """Raised by a primitive that must suspend the *whole VM* and retry.

    The C call is unwound without consuming its arguments and the PC is
    rewound to the ``C_CALL`` instruction, so re-running the VM simply
    re-executes the primitive — which must therefore be idempotent until
    it succeeds (the cluster ``recv`` on an empty mailbox is the
    canonical case).  The interpreter returns the status ``"yielded"``.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "node yielded")
        self.reason = reason


class ArgsView:
    """GC-safe window onto a primitive's arguments (temporary roots)."""

    __slots__ = ("_roots", "_base", "_n")

    def __init__(self, roots: list[int], base: int, n: int) -> None:
        self._roots = roots
        self._base = base
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(i)
        return self._roots[self._base + i]

    def __setitem__(self, i: int, value: int) -> None:
        if not 0 <= i < self._n:
            raise IndexError(i)
        self._roots[self._base + i] = value


PrimFn = Callable[["VirtualMachine", ArgsView], int]


class Primitive:
    """One registered primitive."""

    __slots__ = ("pid", "name", "nargs", "fn")

    def __init__(self, pid: int, name: str, nargs: int, fn: PrimFn) -> None:
        self.pid = pid
        self.name = name
        self.nargs = nargs
        self.fn = fn


class PrimitiveTable:
    """Registry mapping primitive ids and names to implementations."""

    def __init__(self) -> None:
        self._by_id: list[Primitive] = []
        self._by_name: dict[str, Primitive] = {}

    def register(self, name: str, nargs: int, fn: PrimFn) -> Primitive:
        """Add a primitive; ids are assigned in registration order."""
        if name in self._by_name:
            raise BytecodeError(f"duplicate primitive {name!r}")
        if not 1 <= nargs <= 5:
            raise BytecodeError("primitives take between 1 and 5 arguments")
        prim = Primitive(len(self._by_id), name, nargs, fn)
        self._by_id.append(prim)
        self._by_name[name] = prim
        return prim

    def by_id(self, pid: int) -> Primitive:
        """Look up by numeric id (interpreter hot path)."""
        try:
            return self._by_id[pid]
        except IndexError:
            raise BytecodeError(f"unknown primitive id {pid}") from None

    def by_name(self, name: str) -> Primitive:
        """Look up by name (compiler)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise BytecodeError(f"unknown primitive {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        """All registered primitive names."""
        return list(self._by_name)


# ---------------------------------------------------------------------------
# Standard primitives
# ---------------------------------------------------------------------------


def _chan(vm: "VirtualMachine", value: int):
    """Decode a channel value (a one-field block holding the id)."""
    cid = vm.mem.values.int_val(vm.mem.field(value, 0))
    return vm.channels.get(cid)


def _make_chan(vm: "VirtualMachine", cid: int) -> int:
    return vm.mem.make_block(0, [vm.mem.values.val_int(cid)])


# -- console I/O --------------------------------------------------------------


def _print_string(vm, args):
    vm.channels.stdout.write(vm.mem.read_string(args[0]))
    return vm.mem.values.val_unit


def _print_int(vm, args):
    vm.channels.stdout.write(str(vm.mem.values.int_val(args[0])).encode())
    return vm.mem.values.val_unit


def _print_char(vm, args):
    vm.channels.stdout.write(bytes([vm.mem.values.int_val(args[0]) & 0xFF]))
    return vm.mem.values.val_unit


def _print_newline(vm, args):
    vm.channels.stdout.write(b"\n")
    return vm.mem.values.val_unit


def _print_float(vm, args):
    x = vm.mem.read_float(args[0])
    vm.channels.stdout.write(repr(x).encode())
    return vm.mem.values.val_unit


# -- strings ---------------------------------------------------------------------


def _string_length(vm, args):
    return vm.mem.values.val_int(vm.mem.string_length(args[0]))


def _string_make(vm, args):
    n = vm.mem.values.int_val(args[0])
    c = vm.mem.values.int_val(args[1]) & 0xFF
    if n < 0:
        raise PrimitiveError("string_make: negative length")
    return vm.mem.make_string(bytes([c]) * n)


def _string_concat(vm, args):
    a = vm.mem.read_string(args[0])
    b = vm.mem.read_string(args[1])
    return vm.mem.make_string(a + b)


def _string_equal(vm, args):
    """Structural string equality; total (non-strings compare unequal),
    so it can back string patterns in ``match``/``try`` arms."""
    from repro.errors import ReproError
    from repro.memory.blocks import STRING_TAG

    def as_string(v):
        if vm.mem.values.is_int(v) or vm.mem.atoms.contains(v):
            return None
        try:
            if vm.mem.tag_of(v) != STRING_TAG:
                return None
            return vm.mem.read_string(v)
        except (ReproError, ValueError):
            return None

    a = as_string(args[0])
    b = as_string(args[1])
    eq = a is not None and b is not None and a == b
    return vm.mem.values.val_bool(eq)

def _string_compare(vm, args):
    a = vm.mem.read_string(args[0])
    b = vm.mem.read_string(args[1])
    return vm.mem.values.val_int((a > b) - (a < b))


def _string_of_int(vm, args):
    return vm.mem.make_string(str(vm.mem.values.int_val(args[0])).encode())


def _string_sub(vm, args):
    s = vm.mem.read_string(args[0])
    start = vm.mem.values.int_val(args[1])
    length = vm.mem.values.int_val(args[2])
    if start < 0 or length < 0 or start + length > len(s):
        raise PrimitiveError("string_sub: out of bounds")
    return vm.mem.make_string(s[start : start + length])


# -- arrays -----------------------------------------------------------------------


def _array_make(vm, args):
    n = vm.mem.values.int_val(args[0])
    if n < 0:
        raise PrimitiveError("array_make: negative length")
    if n == 0:
        return vm.mem.atoms.atom(0)
    block = vm.mem.alloc(n, 0)
    init = args[1]  # re-read after the allocation (GC may have run)
    for i in range(n):
        vm.mem.init_field(block, i, init)
    return block


# -- floats -----------------------------------------------------------------------


def _float_of_int(vm, args):
    return vm.mem.make_float(float(vm.mem.values.int_val(args[0])))


def _int_of_float(vm, args):
    return vm.mem.values.val_int(int(vm.mem.read_float(args[0])))


def _float_binop(op):
    def fn(vm, args):
        a = vm.mem.read_float(args[0])
        b = vm.mem.read_float(args[1])
        try:
            return vm.mem.make_float(op(a, b))
        except ZeroDivisionError:
            return vm.mem.make_float(math.inf if a > 0 else (-math.inf if a < 0 else math.nan))
    return fn


def _float_cmp(op):
    def fn(vm, args):
        a = vm.mem.read_float(args[0])
        b = vm.mem.read_float(args[1])
        return vm.mem.values.val_bool(op(a, b))
    return fn


def _neg_float(vm, args):
    return vm.mem.make_float(-vm.mem.read_float(args[0]))


def _sqrt_float(vm, args):
    return vm.mem.make_float(math.sqrt(vm.mem.read_float(args[0])))


# -- threads -----------------------------------------------------------------------


def _thread_create(vm, args):
    t = vm.sched.spawn(args[0], vm.code_addr_to_index)
    return vm.mem.values.val_int(t.tid)


def _thread_yield(vm, args):
    vm.pending.request_reschedule()
    return vm.mem.values.val_unit


def _thread_self(vm, args):
    return vm.mem.values.val_int(vm.sched.current.tid)


def _thread_join(vm, args):
    from repro.threads.thread import BlockKind, ThreadState

    tid = vm.mem.values.int_val(args[0])
    target = vm.sched.threads.get(tid)
    if target is None:
        raise PrimitiveError(f"thread_join: no thread {tid}")
    if target is vm.sched.current:
        raise PrimitiveError("thread_join: joining self")
    if target.state is ThreadState.FINISHED:
        return vm.mem.values.val_unit
    vm.sched.block_current(BlockKind.JOIN, tid)
    raise BlockThread(vm.mem.values.val_unit)


def _mutex_create(vm, args):
    return vm.mutexes.create()


def _mutex_lock(vm, args):
    if vm.mutexes.lock(args[0]):
        return vm.mem.values.val_unit
    raise BlockThread(vm.mem.values.val_unit)


def _mutex_unlock(vm, args):
    vm.mutexes.unlock(args[0])
    return vm.mem.values.val_unit


def _condition_create(vm, args):
    return vm.condvars.create()


def _condition_wait(vm, args):
    vm.condvars.wait(args[0], args[1])
    raise BlockThread(vm.mem.values.val_unit)


def _condition_signal(vm, args):
    vm.condvars.signal(args[0])
    return vm.mem.values.val_unit


def _condition_broadcast(vm, args):
    vm.condvars.broadcast(args[0])
    return vm.mem.values.val_unit


# -- channels ----------------------------------------------------------------------
#
# Channel failures surface as *catchable* VM exceptions, mirroring
# OCaml's End_of_file / Sys_error: reading past EOF or opening a missing
# file can be handled by the byte-code program with try/with.


def _vm_io_error(vm, message: str):
    return VMExceptionRaise(vm.mem.make_string(message.encode()))


def _open_out(vm, args):
    path = vm.mem.read_string(args[0]).decode()
    try:
        return _make_chan(vm, vm.channels.open_out(path))
    except OSError as exc:
        raise _vm_io_error(vm, f"Sys_error: {exc.strerror}") from None


def _open_in(vm, args):
    path = vm.mem.read_string(args[0]).decode()
    try:
        return _make_chan(vm, vm.channels.open_in(path))
    except OSError as exc:
        raise _vm_io_error(vm, f"Sys_error: {exc.strerror}") from None


def _output_string(vm, args):
    from repro.errors import ChannelError

    try:
        _chan(vm, args[0]).write(vm.mem.read_string(args[1]))
    except ChannelError as exc:
        raise _vm_io_error(vm, f"Sys_error: {exc}") from None
    return vm.mem.values.val_unit


def _output_char(vm, args):
    from repro.errors import ChannelError

    try:
        _chan(vm, args[0]).write(bytes([vm.mem.values.int_val(args[1]) & 0xFF]))
    except ChannelError as exc:
        raise _vm_io_error(vm, f"Sys_error: {exc}") from None
    return vm.mem.values.val_unit


def _input_char(vm, args):
    from repro.errors import ChannelError

    try:
        return vm.mem.values.val_int(_chan(vm, args[0]).read_byte())
    except ChannelError as exc:
        raise _vm_io_error(vm, f"Sys_error: {exc}") from None


def _input_line(vm, args):
    from repro.errors import ChannelError

    ch = _chan(vm, args[0])
    try:
        return vm.mem.make_string(ch.read_line())
    except ChannelError as exc:
        if "end of file" in str(exc):
            raise _vm_io_error(vm, "End_of_file") from None
        raise _vm_io_error(vm, f"Sys_error: {exc}") from None


def _close_channel(vm, args):
    _chan(vm, args[0]).close()
    return vm.mem.values.val_unit


def _flush(vm, args):
    from repro.errors import ChannelError

    try:
        _chan(vm, args[0]).flush()
    except ChannelError as exc:
        raise _vm_io_error(vm, f"Sys_error: {exc}") from None
    return vm.mem.values.val_unit


def _stdout_chan(vm, args):
    return _make_chan(vm, 1)


def _stderr_chan(vm, args):
    return _make_chan(vm, 2)


# -- control -----------------------------------------------------------------------


def _checkpoint(vm, args):
    """User-initiated checkpoint: set the flag; the interpreter performs
    the checkpoint at the next instruction boundary (a safe point by
    construction — paper §3.1.2)."""
    vm.pending.request_checkpoint()
    return vm.mem.values.val_unit


def _exit(vm, args):
    raise ExitProgram(vm.mem.values.int_val(args[0]))


# -- cluster (message passing between VMs) -----------------------------------------


def _cluster(vm):
    if vm.cluster is None:
        raise PrimitiveError("this VM is not part of a cluster")
    return vm.cluster


def _cluster_rank(vm, args):
    return vm.mem.values.val_int(_cluster(vm).rank)


def _cluster_size(vm, args):
    return vm.mem.values.val_int(_cluster(vm).size)


def _cluster_send(vm, args):
    from repro.serialize import extern_value

    binding = _cluster(vm)
    dest = vm.mem.values.int_val(args[0])
    binding.send(dest, extern_value(vm.mem, args[1]))
    return vm.mem.values.val_unit


def _cluster_recv(vm, args):
    from repro.serialize import intern_value

    binding = _cluster(vm)
    data = binding.recv()
    if data is None:
        # Nothing to receive: suspend the whole node; the coordinator
        # resumes it when a message arrives (idempotent retry).
        raise YieldNode("recv on empty mailbox")
    return intern_value(vm.mem, data)


def _raise(vm, args):
    raise VMExceptionRaise(args[0])


def _failwith(vm, args):
    raise VMExceptionRaise(args[0])


def _invalid_arg(vm, args):
    raise VMExceptionRaise(args[0])


def _match_failure(vm, args):
    raise VMExceptionRaise(vm.mem.make_string(b"Match_failure"))


def _gc_minor(vm, args):
    vm.gc.minor_collection()
    return vm.mem.values.val_unit


def _gc_full_major(vm, args):
    vm.gc.full_major()
    return vm.mem.values.val_unit


#: Field order of the block ``gc_stat`` returns.
GC_STAT_FIELDS = (
    "minor_collections",
    "major_cycles",
    "promoted_words",
    "heap_words",
    "live_words",
    "free_words",
    "heap_chunks",
)


def _gc_compact(vm, args):
    vm.gc.compact()
    return vm.mem.values.val_unit


def _gc_stat(vm, args):
    """``Gc.stat``-style counters as a 7-field block (see GC_STAT_FIELDS)."""
    stat = vm.gc.stat()
    v = vm.mem.values
    return vm.mem.make_block(
        0, [v.val_int(stat[name]) for name in GC_STAT_FIELDS]
    )


def build_standard_table() -> PrimitiveTable:
    """The VM's standard primitive table.

    Registration order is part of the program ABI — append only.
    """
    t = PrimitiveTable()
    t.register("print_string", 1, _print_string)
    t.register("print_int", 1, _print_int)
    t.register("print_char", 1, _print_char)
    t.register("print_newline", 1, _print_newline)
    t.register("print_float", 1, _print_float)
    t.register("string_length", 1, _string_length)
    t.register("string_make", 2, _string_make)
    t.register("string_concat", 2, _string_concat)
    t.register("string_equal", 2, _string_equal)
    t.register("string_compare", 2, _string_compare)
    t.register("string_of_int", 1, _string_of_int)
    t.register("string_sub", 3, _string_sub)
    t.register("array_make", 2, _array_make)
    t.register("float_of_int", 1, _float_of_int)
    t.register("int_of_float", 1, _int_of_float)
    t.register("add_float", 2, _float_binop(lambda a, b: a + b))
    t.register("sub_float", 2, _float_binop(lambda a, b: a - b))
    t.register("mul_float", 2, _float_binop(lambda a, b: a * b))
    t.register("div_float", 2, _float_binop(lambda a, b: a / b))
    t.register("neg_float", 1, _neg_float)
    t.register("sqrt_float", 1, _sqrt_float)
    t.register("lt_float", 2, _float_cmp(lambda a, b: a < b))
    t.register("le_float", 2, _float_cmp(lambda a, b: a <= b))
    t.register("gt_float", 2, _float_cmp(lambda a, b: a > b))
    t.register("ge_float", 2, _float_cmp(lambda a, b: a >= b))
    t.register("eq_float", 2, _float_cmp(lambda a, b: a == b))
    t.register("thread_create", 1, _thread_create)
    t.register("thread_yield", 1, _thread_yield)
    t.register("thread_self", 1, _thread_self)
    t.register("thread_join", 1, _thread_join)
    t.register("mutex_create", 1, _mutex_create)
    t.register("mutex_lock", 1, _mutex_lock)
    t.register("mutex_unlock", 1, _mutex_unlock)
    t.register("condition_create", 1, _condition_create)
    t.register("condition_wait", 2, _condition_wait)
    t.register("condition_signal", 1, _condition_signal)
    t.register("condition_broadcast", 1, _condition_broadcast)
    t.register("open_out", 1, _open_out)
    t.register("open_in", 1, _open_in)
    t.register("output_string", 2, _output_string)
    t.register("output_char", 2, _output_char)
    t.register("input_char", 1, _input_char)
    t.register("input_line", 1, _input_line)
    t.register("close_out", 1, _close_channel)
    t.register("close_in", 1, _close_channel)
    t.register("flush", 1, _flush)
    t.register("stdout_channel", 1, _stdout_chan)
    t.register("stderr_channel", 1, _stderr_chan)
    t.register("checkpoint", 1, _checkpoint)
    t.register("exit", 1, _exit)
    t.register("gc_minor", 1, _gc_minor)
    t.register("gc_full_major", 1, _gc_full_major)
    t.register("match_failure", 1, _match_failure)
    t.register("cluster_rank", 1, _cluster_rank)
    t.register("cluster_size", 1, _cluster_size)
    t.register("cluster_send", 2, _cluster_send)
    t.register("cluster_recv", 1, _cluster_recv)
    t.register("raise", 1, _raise)
    t.register("failwith", 1, _failwith)
    t.register("invalid_arg", 1, _invalid_arg)
    t.register("gc_stat", 1, _gc_stat)
    t.register("gc_compact", 1, _gc_compact)
    return t


#: Shared immutable instance used by compiler and VM.
STANDARD_PRIMITIVES = build_standard_table()
