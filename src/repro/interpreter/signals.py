"""Pending-event flags checked at safe points.

The paper's checkpoint mechanism hinges on this: "When a checkpoint is
invoked, the OCVM sets a specific flag indicating a checkpoint request
and continues normal execution ... the OCVM interpreter checks the
signal and status flags before fetching a new instruction" (§3.1.2,
§4.1).  ``PendingSet`` is that set of flags; ``any`` is the single cheap
test the dispatch loop performs per instruction.
"""

from __future__ import annotations


class PendingSet:
    """Events to be handled at the next safe point."""

    __slots__ = ("checkpoint", "reschedule", "stop", "any")

    def __init__(self) -> None:
        self.checkpoint = False
        self.reschedule = False
        self.stop = False
        #: Fast-path flag: true iff any event is pending.
        self.any = False

    def request_checkpoint(self) -> None:
        """Set the checkpoint flag (the paper's ``chkpt_flag``)."""
        self.checkpoint = True
        self.any = True

    def request_reschedule(self) -> None:
        """Ask for a thread switch at the next safe point."""
        self.reschedule = True
        self.any = True

    def request_stop(self) -> None:
        """Ask the interpreter to halt at the next safe point."""
        self.stop = True
        self.any = True

    def clear_checkpoint(self) -> None:
        self.checkpoint = False
        self._recompute()

    def clear_reschedule(self) -> None:
        self.reschedule = False
        self._recompute()

    def clear_stop(self) -> None:
        self.stop = False
        self._recompute()

    def _recompute(self) -> None:
        self.any = self.checkpoint or self.reschedule or self.stop
