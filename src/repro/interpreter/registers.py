"""The abstract register file (paper §2.5, §3.1.5).

PC, SP, ACCU and ENV plus ``extra_args``.  The paper passes these as
actual parameters into the checkpoint routine (Figure 4); here they are
a small dataclass the checkpoint writer snapshots per thread.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Registers:
    """A snapshot of one thread's abstract registers.

    ``pc`` is stored as a *code address* value (``code_base + 4*index``)
    — the form it takes inside checkpoint files, where it is re-based on
    restart like any other code pointer.  ``sp`` is the stack pointer
    byte address; ``accu`` and ``env`` are tagged values; ``extra_args``
    is a plain count.
    """

    pc: int
    sp: int
    accu: int
    env: int
    extra_args: int
