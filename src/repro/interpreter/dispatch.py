"""The fast dispatch tier: operand-bound handler closures.

The reference loop (kept verbatim in
:meth:`repro.interpreter.interpreter.Interpreter._run_reference` as the
differential oracle) pays, per instruction: an opcode fetch, a table
lookup, a bounds test, and one ``_fetch`` attribute chain per operand.
This module compiles the decode-once stream of
:mod:`repro.bytecode.decoded` into per-instruction *closures* with the
operands (and, where possible, fully tagged values) bound at build
time, so the hot loop is ``pc = handler()`` and nothing else.

The pc protocol: a *sealed* closure returns the next canonical
code-unit index (usually a bind-time constant), so the hot path never
touches the ``Interpreter.pc`` attribute at all.  Closures that
delegate to reference handlers position ``pc`` on their operands
first and return whatever the handler left in it, which keeps complex
control flow (calls, raises, thread switches, the C_CALL yield
rewind) reference-identical by construction.  *Stateful* entries
(``counts[i] == 0``: batched kernels and escape slots) communicate
through the live ``pc``/``instructions``/``_countdown`` fields
instead, and the loop synchronizes around them.

Three layers, all preserving canonical code-unit ``pc`` semantics:

* **Singles** — one closure per instruction start.  Ops without a
  specialized factory get the generic reference-handler wrapper.
* **Superinstructions** — fused closures for the planned hot groups.
  The group members keep their individual entries, so branches, trap
  returns and restored checkpoints landing *inside* a fused region
  execute the canonical singles.
* **Batched loop kernels** — counted loops over global int refs run N
  iterations per dispatch with numpy, bounded by the preemption
  countdown so quantum ticks and pending checkpoints keep firing at
  loop back-edges.  Any surprise (non-int cell, aliased refs, value
  near the boxed-int range) falls back to single-step execution, whose
  semantics are exact.

Every slot that is not a decodable instruction start carries an
*escape* closure that performs one reference-style fetch/dispatch, so
even misaligned jumps behave exactly as the reference loop would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.bytecode.decoded import (
    CountedLoopPlan,
    DecodedInstruction,
    FUSIBLE_INNER,
    StrideLoopPlan,
)
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError, MemoryError_

if TYPE_CHECKING:  # pragma: no cover
    from repro.interpreter.interpreter import Interpreter

__all__ = ["FastCode", "build_fast_code"]

#: Universal tagged constants (identical on every architecture; see
#: :class:`repro.memory.values.ValueCodec`).
_VAL_FALSE = 1   # == val_unit
_VAL_TRUE = 3

#: Hard cap on a single kernel batch (bounds numpy temporaries; the
#: preemption countdown is normally the binding limit).
_MAX_BATCH = 1 << 16


class FastCode:
    """The bound program: one closure and one canonical count per slot.

    ``counts[i]`` is the number of canonical instructions dispatching
    slot ``i`` represents (1 for singles, group size for
    superinstructions); 0 marks a *stateful* entry (batched kernel,
    escape slot) that does its own accounting against the live
    interpreter fields and leaves the next pc in ``Interpreter.pc``
    instead of returning it.
    """

    __slots__ = ("handlers", "counts")

    def __init__(self, handlers: list, counts: list[int]) -> None:
        self.handlers = handlers
        self.counts = counts


# ---------------------------------------------------------------------------
# Single-instruction closure factories
# ---------------------------------------------------------------------------
#
# Each factory returns a closure for one decoded instruction.  With
# ``nxt`` given, the closure is sealed — it returns the next canonical
# pc; with ``nxt=None`` it is a group inner: no pc involvement at all.


def _f_check_signals(I, e, nxt):
    if nxt is None:
        def h():
            return None
    else:
        def h():
            return nxt
    return h


def _f_acc(I, e, nxt):
    n = e.raw[0]
    if nxt is None:
        def h():
            I.accu = I.stack.peek(n)
    else:
        def h():
            I.accu = I.stack.peek(n)
            return nxt
    return h


def _f_push(I, e, nxt):
    if nxt is None:
        def h():
            I.stack.push(I.accu)
    else:
        def h():
            I.stack.push(I.accu)
            return nxt
    return h


def _f_pushacc(I, e, nxt):
    n = e.raw[0]
    if nxt is None:
        def h():
            s = I.stack
            s.push(I.accu)
            I.accu = s.peek(n)
    else:
        def h():
            s = I.stack
            s.push(I.accu)
            I.accu = s.peek(n)
            return nxt
    return h


def _f_pop(I, e, nxt):
    n = e.raw[0]
    if nxt is None:
        def h():
            I.stack.popn(n)
    else:
        def h():
            I.stack.popn(n)
            return nxt
    return h


def _f_assign(I, e, nxt):
    n = e.raw[0]
    if nxt is None:
        def h():
            I.stack.poke(n, I.accu)
            I.accu = _VAL_FALSE
    else:
        def h():
            I.stack.poke(n, I.accu)
            I.accu = _VAL_FALSE
            return nxt
    return h


def _f_envacc(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    if nxt is None:
        def h():
            I.accu = mem.field(I.env, n)
    else:
        def h():
            I.accu = mem.field(I.env, n)
            return nxt
    return h


def _f_pushenvacc(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    if nxt is None:
        def h():
            I.stack.push(I.accu)
            I.accu = mem.field(I.env, n)
    else:
        def h():
            I.stack.push(I.accu)
            I.accu = mem.field(I.env, n)
            return nxt
    return h


def _f_offsetclosure0(I, e, nxt):
    if nxt is None:
        def h():
            I.accu = I.env
    else:
        def h():
            I.accu = I.env
            return nxt
    return h


def _f_constint(I, e, nxt):
    val = I._values.val_int(e.signed(0))  # tagged once, at build time
    if nxt is None:
        def h():
            I.accu = val
    else:
        def h():
            I.accu = val
            return nxt
    return h


def _f_pushconstint(I, e, nxt):
    val = I._values.val_int(e.signed(0))
    if nxt is None:
        def h():
            I.stack.push(I.accu)
            I.accu = val
    else:
        def h():
            I.stack.push(I.accu)
            I.accu = val
            return nxt
    return h


def _f_atom(I, e, nxt):
    t = e.raw[0]
    atoms = I._mem.atoms
    if nxt is None:
        def h():
            I.accu = atoms.atom(t)
    else:
        def h():
            I.accu = atoms.atom(t)
            return nxt
    return h


def _f_pushatom(I, e, nxt):
    t = e.raw[0]
    atoms = I._mem.atoms
    if nxt is None:
        def h():
            I.stack.push(I.accu)
            I.accu = atoms.atom(t)
    else:
        def h():
            I.stack.push(I.accu)
            I.accu = atoms.atom(t)
            return nxt
    return h


def _f_getglobal(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    vm = I.vm
    if nxt is None:
        def h():
            I.accu = mem.field(vm.global_data, n)
    else:
        def h():
            I.accu = mem.field(vm.global_data, n)
            return nxt
    return h


def _f_pushgetglobal(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    vm = I.vm
    if nxt is None:
        def h():
            I.stack.push(I.accu)
            I.accu = mem.field(vm.global_data, n)
    else:
        def h():
            I.stack.push(I.accu)
            I.accu = mem.field(vm.global_data, n)
            return nxt
    return h


def _f_setglobal(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    vm = I.vm
    if nxt is None:
        def h():
            mem.set_field(vm.global_data, n, I.accu)
            I.accu = _VAL_FALSE
    else:
        def h():
            mem.set_field(vm.global_data, n, I.accu)
            I.accu = _VAL_FALSE
            return nxt
    return h


def _f_getfield(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    if nxt is None:
        def h():
            I.accu = mem.field(I.accu, n)
    else:
        def h():
            I.accu = mem.field(I.accu, n)
            return nxt
    return h


def _f_setfield(I, e, nxt):
    n = e.raw[0]
    mem = I._mem
    if nxt is None:
        def h():
            mem.set_field(I.accu, n, I.stack.pop())
            I.accu = _VAL_FALSE
    else:
        def h():
            mem.set_field(I.accu, n, I.stack.pop())
            I.accu = _VAL_FALSE
            return nxt
    return h


def _f_vectlength(I, e, nxt):
    mem = I._mem
    v = I._values
    if nxt is None:
        def h():
            I.accu = v.val_int(mem.size_of(I.accu))
    else:
        def h():
            I.accu = v.val_int(mem.size_of(I.accu))
            return nxt
    return h


def _f_isint(I, e, nxt):
    if nxt is None:
        def h():
            I.accu = _VAL_TRUE if I.accu & 1 else _VAL_FALSE
    else:
        def h():
            I.accu = _VAL_TRUE if I.accu & 1 else _VAL_FALSE
            return nxt
    return h


def _f_boolnot(I, e, nxt):
    if nxt is None:
        def h():
            I.accu = _VAL_TRUE if I.accu == _VAL_FALSE else _VAL_FALSE
    else:
        def h():
            I.accu = _VAL_TRUE if I.accu == _VAL_FALSE else _VAL_FALSE
            return nxt
    return h


def _f_negint(I, e, nxt):
    v = I._values
    if nxt is None:
        def h():
            I.accu = v.val_int(-v.int_val(I.accu))
    else:
        def h():
            I.accu = v.val_int(-v.int_val(I.accu))
            return nxt
    return h


def _f_offsetint(I, e, nxt):
    k = e.signed(0)
    v = I._values
    if nxt is None:
        def h():
            I.accu = v.val_int(v.int_val(I.accu) + k)
    else:
        def h():
            I.accu = v.val_int(v.int_val(I.accu) + k)
            return nxt
    return h


def _arith(pyop):
    def factory(I, e, nxt):
        v = I._values
        if nxt is None:
            def h():
                I.accu = v.val_int(
                    pyop(v.int_val(I.accu), v.int_val(I.stack.pop()))
                )
        else:
            def h():
                I.accu = v.val_int(
                    pyop(v.int_val(I.accu), v.int_val(I.stack.pop()))
                )
                return nxt
        return h
    return factory


def _rawbit(pyop):
    def factory(I, e, nxt):
        if nxt is None:
            def h():
                I.accu = pyop(I.accu, I.stack.pop())
        else:
            def h():
                I.accu = pyop(I.accu, I.stack.pop())
                return nxt
        return h
    return factory


def _cmp(pyop):
    def factory(I, e, nxt):
        v = I._values
        if nxt is None:
            def h():
                I.accu = (
                    _VAL_TRUE
                    if pyop(v.int_val(I.accu), v.int_val(I.stack.pop()))
                    else _VAL_FALSE
                )
        else:
            def h():
                I.accu = (
                    _VAL_TRUE
                    if pyop(v.int_val(I.accu), v.int_val(I.stack.pop()))
                    else _VAL_FALSE
                )
                return nxt
        return h
    return factory


def _raweq(pyop):
    def factory(I, e, nxt):
        if nxt is None:
            def h():
                I.accu = (
                    _VAL_TRUE if pyop(I.accu, I.stack.pop()) else _VAL_FALSE
                )
        else:
            def h():
                I.accu = (
                    _VAL_TRUE if pyop(I.accu, I.stack.pop()) else _VAL_FALSE
                )
                return nxt
        return h
    return factory


def _f_lslint(I, e, nxt):
    v = I._values
    mask = I._shift_mask
    if nxt is None:
        def h():
            k = v.int_val(I.stack.pop()) & mask
            I.accu = v.val_int(v.int_val(I.accu) << k)
    else:
        def h():
            k = v.int_val(I.stack.pop()) & mask
            I.accu = v.val_int(v.int_val(I.accu) << k)
            return nxt
    return h


def _f_lsrint(I, e, nxt):
    v = I._values
    mask = I._shift_mask
    wmask = I._word_mask
    if nxt is None:
        def h():
            k = v.int_val(I.stack.pop()) & mask
            I.accu = ((I.accu & wmask) >> k) | 1
    else:
        def h():
            k = v.int_val(I.stack.pop()) & mask
            I.accu = ((I.accu & wmask) >> k) | 1
            return nxt
    return h


def _f_asrint(I, e, nxt):
    v = I._values
    mask = I._shift_mask
    asr = I._mem.arch.asr
    if nxt is None:
        def h():
            k = v.int_val(I.stack.pop()) & mask
            I.accu = asr(I.accu, k) | 1
    else:
        def h():
            k = v.int_val(I.stack.pop()) & mask
            I.accu = asr(I.accu, k) | 1
            return nxt
    return h


def _f_makeblock(I, e, nxt):
    size, tag = e.raw[0], e.raw[1]
    mem = I._mem
    if size == 0:
        atoms = mem.atoms
        if nxt is None:
            def h():
                I.accu = atoms.atom(tag)
        else:
            def h():
                I.accu = atoms.atom(tag)
                return nxt
        return h

    def body():
        block = mem.alloc(size, tag)
        # Read accu only after the allocation: a GC may have moved it.
        mem.init_field(block, 0, I.accu)
        pop = I.stack.pop
        for i in range(1, size):
            mem.init_field(block, i, pop())
        I.accu = block

    if nxt is None:
        h = body
    else:
        def h():
            body()
            return nxt
    return h


def _f_strlit(I, e, nxt):
    data = I.vm.code.string_literals[e.raw[0]]
    mem = I._mem
    if nxt is None:
        def h():
            I.accu = mem.make_string(data)
    else:
        def h():
            I.accu = mem.make_string(data)
            return nxt
    return h


def _f_floatlit(I, e, nxt):
    x = I.vm.code.float_literals[e.raw[0]]
    mem = I._mem
    if nxt is None:
        def h():
            I.accu = mem.make_float(x)
    else:
        def h():
            I.accu = mem.make_float(x)
            return nxt
    return h


# Tail-only closures: ops that transfer control (APPLY) or may raise a
# catchable VM exception (GETVECTITEM/SETVECTITEM).  They are in
# FUSIBLE_TAIL but not FUSIBLE_INNER — by the time they run, every
# earlier group member has committed, so the raise path observes
# canonical state.  On the raise path they position ``pc`` exactly
# where the reference wrapper would have left it before delegating to
# ``raise_runtime``, then return whatever pc ``do_raise`` produced.

def _f_apply(I, e, nxt):
    n1 = e.raw[0] - 1
    mem = I._mem
    after = e.next

    def h():
        closure = I.accu
        I.extra_args = n1
        I.pc = after  # reference-identical state if the address is bad
        target = I.code_index(mem.field(closure, 0))
        I.env = closure
        return target
    return h


def _f_getvectitem(I, e, nxt):
    mem = I._mem
    v = I._values
    after = e.next

    def h():
        index = v.int_val(I.stack.pop())
        block = I.accu
        if 0 <= index < mem.size_of(block):
            I.accu = mem.field(block, index)
            return after
        I.pc = after
        I.raise_runtime("Invalid_argument: index out of bounds")
        return I.pc
    return h


def _f_setvectitem(I, e, nxt):
    mem = I._mem
    v = I._values
    after = e.next

    def h():
        s = I.stack
        index = v.int_val(s.pop())
        value = s.pop()
        block = I.accu
        if 0 <= index < mem.size_of(block):
            mem.set_field(block, index, value)
            I.accu = _VAL_FALSE
            return after
        I.pc = after
        I.raise_runtime("Invalid_argument: index out of bounds")
        return I.pc
    return h


# Branch closures (return whichever successor they choose; group-tail
# capable).

def _f_branch(I, e, nxt):
    t = e.targets[0]

    def h():
        return t
    return h


def _f_branchif(I, e, nxt):
    t = e.targets[0]
    f = e.next

    def h():
        return f if I.accu == _VAL_FALSE else t
    return h


def _f_branchifnot(I, e, nxt):
    t = e.targets[0]
    f = e.next

    def h():
        return t if I.accu == _VAL_FALSE else f
    return h


FACTORIES = {
    int(Op.CHECK_SIGNALS): _f_check_signals,
    int(Op.ACC): _f_acc,
    int(Op.PUSH): _f_push,
    int(Op.PUSHACC): _f_pushacc,
    int(Op.POP): _f_pop,
    int(Op.ASSIGN): _f_assign,
    int(Op.ENVACC): _f_envacc,
    int(Op.PUSHENVACC): _f_pushenvacc,
    int(Op.OFFSETCLOSURE0): _f_offsetclosure0,
    int(Op.CONSTINT): _f_constint,
    int(Op.PUSHCONSTINT): _f_pushconstint,
    int(Op.ATOM): _f_atom,
    int(Op.PUSHATOM): _f_pushatom,
    int(Op.GETGLOBAL): _f_getglobal,
    int(Op.PUSHGETGLOBAL): _f_pushgetglobal,
    int(Op.SETGLOBAL): _f_setglobal,
    int(Op.GETFIELD): _f_getfield,
    int(Op.SETFIELD): _f_setfield,
    int(Op.VECTLENGTH): _f_vectlength,
    int(Op.ISINT): _f_isint,
    int(Op.BOOLNOT): _f_boolnot,
    int(Op.NEGINT): _f_negint,
    int(Op.OFFSETINT): _f_offsetint,
    int(Op.ADDINT): _arith(lambda a, b: a + b),
    int(Op.SUBINT): _arith(lambda a, b: a - b),
    int(Op.MULINT): _arith(lambda a, b: a * b),
    int(Op.ANDINT): _rawbit(lambda a, b: a & b),
    int(Op.ORINT): _rawbit(lambda a, b: a | b),
    int(Op.XORINT): _rawbit(lambda a, b: (a ^ b) | 1),
    int(Op.LSLINT): _f_lslint,
    int(Op.LSRINT): _f_lsrint,
    int(Op.ASRINT): _f_asrint,
    int(Op.EQ): _raweq(lambda a, b: a == b),
    int(Op.NEQ): _raweq(lambda a, b: a != b),
    int(Op.LTINT): _cmp(lambda a, b: a < b),
    int(Op.LEINT): _cmp(lambda a, b: a <= b),
    int(Op.GTINT): _cmp(lambda a, b: a > b),
    int(Op.GEINT): _cmp(lambda a, b: a >= b),
    int(Op.MAKEBLOCK): _f_makeblock,
    int(Op.STRLIT): _f_strlit,
    int(Op.FLOATLIT): _f_floatlit,
    int(Op.BRANCH): _f_branch,
    int(Op.BRANCHIF): _f_branchif,
    int(Op.BRANCHIFNOT): _f_branchifnot,
    int(Op.APPLY): _f_apply,
    int(Op.GETVECTITEM): _f_getvectitem,
    int(Op.SETVECTITEM): _f_setvectitem,
}


def _make_generic(I: "Interpreter", e: DecodedInstruction):
    """Reference-handler wrapper: positions pc on the operands,
    delegates, and returns whatever pc the handler produced — so
    complex ops (calls, raises, thread switches, C_CALL's yield
    rewind) stay reference-equivalent by construction."""
    method = getattr(I, "_op_" + Op(e.op).name.lower())
    pos = e.index + 1

    def h():
        I.pc = pos
        method()
        return I.pc
    return h


def _make_escape(I: "Interpreter"):
    """One reference-style fetch/decode/dispatch step at ``I.pc``.

    Installed (as a stateful, count-0 entry) at every slot that is not
    a decodable instruction start, so execution that lands there
    (misaligned jump, junk image) behaves exactly as the reference
    loop would — including the guarded illegal-opcode error and the
    per-instruction countdown/tick bookkeeping.
    """
    def h():
        I._countdown -= 1
        if I._countdown <= 0:
            I._on_tick()
        I.instructions += 1
        pc = I.pc
        op = I._units[pc]
        I.pc = pc + 1
        table = I._handlers
        handler = table[op] if 0 <= op < len(table) else None
        if handler is None:
            raise BytecodeError(f"illegal opcode {op} at {pc}")
        handler()
    return h


def _make_single(I: "Interpreter", e: DecodedInstruction):
    factory = FACTORIES.get(e.op)
    if factory is None:
        return _make_generic(I, e)
    return factory(I, e, e.next)


# ---------------------------------------------------------------------------
# Superinstruction binding
# ---------------------------------------------------------------------------


def _make_fused(I: "Interpreter", members: list[DecodedInstruction]):
    """Compose a group into one closure, or None if not bindable."""
    special = _SPECIAL_FUSED.get(tuple(m.op for m in members))
    if special is not None:
        return special(I, members)
    parts = []
    for m in members[:-1]:
        if m.op not in FUSIBLE_INNER:
            return None
        factory = FACTORIES.get(m.op)
        if factory is None:
            return None
        parts.append(factory(I, m, None))
    tail = members[-1]
    factory = FACTORIES.get(tail.op)
    if factory is None:
        return None
    parts.append(factory(I, tail, tail.next))
    if len(parts) == 2:
        a, b = parts

        def h():
            a()
            return b()
        return h
    if len(parts) == 3:
        a, b, c = parts

        def h():
            a()
            b()
            return c()
        return h
    return None


# Hand-specialized superinstructions for the flagship patterns (no
# intermediate closure calls at all).

def _sf_constint_push_getglobal(I, members):
    val = I._values.val_int(members[0].signed(0))
    n = members[2].raw[0]
    nxt = members[2].next
    mem = I._mem
    vm = I.vm

    def h():
        I.stack.push(val)  # CONSTINT overwrote accu, PUSH pushed it
        I.accu = mem.field(vm.global_data, n)
        return nxt
    return h


def _sf_acc_offsetint_assign(I, members):
    n = members[0].raw[0]
    k = members[1].signed(0)
    m = members[2].raw[0]
    nxt = members[2].next
    v = I._values

    def h():
        s = I.stack
        s.poke(m, v.val_int(v.int_val(s.peek(n)) + k))
        I.accu = _VAL_FALSE
        return nxt
    return h


def _sf_getfield_cmp_branch(cmp_op, branch_op):
    int_cmps = {
        int(Op.LTINT): lambda a, b: a < b,
        int(Op.LEINT): lambda a, b: a <= b,
        int(Op.GTINT): lambda a, b: a > b,
        int(Op.GEINT): lambda a, b: a >= b,
    }
    raw_cmps = {
        int(Op.EQ): lambda a, b: a == b,
        int(Op.NEQ): lambda a, b: a != b,
    }
    taken_when_true = branch_op == int(Op.BRANCHIF)

    def build(I, members):
        n = members[0].raw[0]
        t = members[2].targets[0]
        f = members[2].next
        if not taken_when_true:
            t, f = f, t  # now t = the "condition true" successor
        mem = I._mem
        v = I._values
        if cmp_op in raw_cmps:
            op = raw_cmps[cmp_op]

            def h():
                if op(mem.field(I.accu, n), I.stack.pop()):
                    I.accu = _VAL_TRUE
                    return t
                I.accu = _VAL_FALSE
                return f
        else:
            op = int_cmps[cmp_op]

            def h():
                if op(v.int_val(mem.field(I.accu, n)),
                      v.int_val(I.stack.pop())):
                    I.accu = _VAL_TRUE
                    return t
                I.accu = _VAL_FALSE
                return f
        return h
    return build


_SPECIAL_FUSED = {
    (int(Op.CONSTINT), int(Op.PUSH), int(Op.GETGLOBAL)):
        _sf_constint_push_getglobal,
    (int(Op.ACC), int(Op.OFFSETINT), int(Op.ASSIGN)):
        _sf_acc_offsetint_assign,
}
for _c in (Op.EQ, Op.NEQ, Op.LTINT, Op.LEINT, Op.GTINT, Op.GEINT):
    for _b in (Op.BRANCHIF, Op.BRANCHIFNOT):
        _SPECIAL_FUSED[(int(Op.GETFIELD), int(_c), int(_b))] = (
            _sf_getfield_cmp_branch(int(_c), int(_b))
        )


# ---------------------------------------------------------------------------
# Batched counted-loop kernels
# ---------------------------------------------------------------------------


def _iterations_left(c0: int, bound: int, cmp_op: int, step: int):
    """Full iterations until the condition fails; None if unbounded."""
    if cmp_op == int(Op.LTINT):
        if c0 >= bound:
            return 0
        return (bound - c0 + step - 1) // step if step > 0 else None
    if cmp_op == int(Op.LEINT):
        if c0 > bound:
            return 0
        return (bound - c0) // step + 1 if step > 0 else None
    if cmp_op == int(Op.GTINT):
        if c0 <= bound:
            return 0
        return (c0 - bound + (-step) - 1) // (-step) if step < 0 else None
    if cmp_op == int(Op.GEINT):
        if c0 < bound:
            return 0
        return (c0 - bound) // (-step) + 1 if step < 0 else None
    raise AssertionError(f"unexpected loop comparison {cmp_op}")


class _BatchAbort(Exception):
    """Internal: this batch cannot be proven safe; single-step instead."""


def _make_kernel(I: "Interpreter", plan: CountedLoopPlan):
    """Bind a counted-loop plan into a batched kernel closure.

    The kernel sits at the loop head (its CHECK_SIGNALS safe point) and
    runs ``m`` full iterations per dispatch, where ``m`` is bounded by
    the remaining preemption countdown — so thread quanta, periodic
    checkpoint polls and pending events observe the canonical
    instruction stream at iteration granularity.  All accounting is in
    canonical instruction counts; a checkpoint between batches is
    bit-identical to the reference tier's state at the same head
    boundary.
    """
    mem = I._mem
    v = I._values
    vm = I.vm
    fallthrough = plan.head + 1  # CHECK_SIGNALS is one unit
    iter_count = plan.iter_count
    cond_count = plan.cond_count

    def fallback():
        # Execute just the CHECK_SIGNALS no-op; the singles take over
        # and control returns here at the next back-edge.
        I._countdown -= 1
        if I._countdown <= 0:
            I._on_tick()
        I.instructions += 1
        I.pc = fallthrough

    def read_int_cell(gd, g):
        ref = mem.field(gd, g)
        if ref & 1:
            raise _BatchAbort()
        cell = mem.field(ref, 0)
        if not cell & 1:
            raise _BatchAbort()
        return ref, v.int_val(cell)

    def kernel():
        gd = vm.global_data
        try:
            counter_ref, c0 = read_int_cell(gd, plan.counter)
            if plan.bound_global is not None:
                bound_ref, bound = read_int_cell(gd, plan.bound_global)
            else:
                bound_ref, bound = None, plan.bound_const
            total = _iterations_left(c0, bound, plan.cmp_op, plan.step)
            if total == 0:
                # Final, failing pass of the condition.
                I._countdown -= cond_count
                if I._countdown <= 0:
                    I._on_tick()
                I.instructions += cond_count
                I.accu = _VAL_FALSE
                I.pc = plan.exit
                return
            m = max(1, I._countdown // iter_count)
            if total is not None and total < m:
                m = total
            if m > _MAX_BATCH:
                m = _MAX_BATCH
            # Resolve every cell up front; abort on aliasing (two
            # globals naming one ref would interleave reads/writes in
            # ways the closed forms below do not model).
            cells = {plan.counter: (counter_ref, c0)}
            for u in plan.updates:
                if u.target not in cells:
                    cells[u.target] = read_int_cell(gd, u.target)
                if u.operand_kind == "ref" and u.operand_value not in cells:
                    cells[u.operand_value] = read_int_cell(
                        gd, u.operand_value
                    )
            addrs = [cells[u.target][0] for u in plan.updates]
            if bound_ref is not None:
                addrs.append(bound_ref)
            if len(set(addrs)) != len(addrs):
                raise _BatchAbort()
            target_addrs = {cells[u.target][0] for u in plan.updates}
            for u in plan.updates:
                if (
                    u.operand_kind == "ref"
                    and u.operand_value != plan.counter
                    and cells[u.operand_value][0] in target_addrs
                ):
                    raise _BatchAbort()
            # Overflow pre-check so int64 numpy math is exact.
            magnitude = abs(c0) + abs(plan.step) * (m + 1)
            if magnitude >= (1 << 62):
                raise _BatchAbort()
            for u in plan.updates:
                ov = (
                    abs(u.operand_value)
                    if u.operand_kind == "const"
                    else abs(cells[u.operand_value][1]) + magnitude
                )
                s0 = abs(cells[u.target][1])
                if s0 + (ov + 1) * (m + 1) >= (1 << 62):
                    raise _BatchAbort()
            # Per-iteration deltas, exact intermediate-value bounds.
            t_axis = np.arange(m, dtype=np.int64)
            finals = {}
            counter_bumped = False
            min_int, max_int = v.min_int, v.max_int
            for u in plan.updates:
                if u.target == plan.counter:
                    delta = np.full(m, plan.step, dtype=np.int64)
                    counter_bumped = True
                elif u.operand_kind == "const":
                    delta = np.full(
                        m, u.sign * u.operand_value, dtype=np.int64
                    )
                elif u.operand_value == plan.counter:
                    vals = c0 + plan.step * t_axis
                    if counter_bumped:
                        vals = vals + plan.step
                    delta = u.sign * vals
                else:
                    delta = np.full(
                        m,
                        u.sign * cells[u.operand_value][1],
                        dtype=np.int64,
                    )
                running = np.cumsum(delta) + cells[u.target][1]
                if (
                    int(running.min()) < min_int
                    or int(running.max()) > max_int
                ):
                    raise _BatchAbort()
                finals[u.target] = int(running[-1])
            # The condition also re-reads the counter each iteration;
            # its trajectory is covered by the counter's own cumsum.
        except _BatchAbort:
            return fallback()
        # Commit: one tagged store per updated cell.
        for g, final in finals.items():
            mem.set_field(cells[g][0], 0, v.val_int(final))
        done = m * iter_count
        I._countdown -= done
        if I._countdown <= 0:
            I._on_tick()
        I.instructions += done
        I.accu = _VAL_FALSE  # val_unit: the last body SETFIELD's result
        I.pc = plan.head

    return kernel


# ---------------------------------------------------------------------------
# Batched array-stride loop kernels
# ---------------------------------------------------------------------------


def _make_stride_kernel(I: "Interpreter", plan: StrideLoopPlan):
    """Bind an array-stride loop plan into a numpy-batched kernel.

    The plan's ``store`` tree is evaluated over the whole batch at
    once: counter-strided reads become a contiguous slice of the
    backing chunk (one ``numpy`` conversion for ``m`` iterations),
    row-pointer gathers one address-space load per element, and the
    arithmetic vectorizes.  Two store shapes are recognized:

    * **reduction** — ``c.(j) <- c.(j) + term`` with a loop-invariant
      cell (matmul's dot-product inner loop): the cell is read once,
      the term vector is accumulated with an exact closed form, and one
      barriered store commits the result;
    * **stride map/fill** — ``dst.(i) <- expr``: values are computed
      vectorized and committed through ``set_field`` so GC write
      barriers and incremental-checkpoint dirty tracking observe every
      write.

    Safety mirrors the counted-loop kernel: untagged operands, bounds
    violations, representation overflow, aliasing between read and
    written blocks, or any memory fault during the (side-effect-free)
    evaluation phase abort the batch and fall back to single-step
    execution, whose semantics are exact.  Checkpoint integrity errors
    from lazily-restored chunks propagate — a fallback replay could
    not reproduce them.
    """
    mem = I._mem
    v = I._values
    vm = I.vm
    space = mem.space
    arch = mem.arch
    wb = arch.word_bytes
    bits = arch.bits
    mask = arch.word_mask
    to_signed = arch.to_signed
    min_int, max_int = v.min_int, v.max_int
    fallthrough = plan.head + 1
    iter_count = plan.iter_count
    cond_count = plan.cond_count
    step = plan.step
    _, s_arr, s_idx, s_val = plan.store

    if bits == 64:
        def vec_words(seq):
            return np.array(seq, dtype=np.uint64).view(np.int64)
    else:
        half = 1 << (bits - 1)
        full = 1 << bits

        def vec_words(seq):
            a = np.asarray(seq, dtype=np.int64)
            return np.where(a >= half, a - full, a)

    def invariant(e) -> bool:
        if e == ("slot", 0):
            return False
        return all(invariant(x) for x in e[1:] if isinstance(x, tuple))

    # Reduction shape: the stored cell is loop-invariant and the value
    # is that same cell plus/minus a term (ADDINT commutes; SUBINT only
    # with the cell on the left).
    red_term = None
    red_sign = 0
    if (
        isinstance(s_val, tuple) and s_val[0] == "bin"
        and invariant(s_arr) and invariant(s_idx)
    ):
        cell = ("elem", s_arr, s_idx)
        op, lhs, rhs = s_val[1], s_val[2], s_val[3]
        if op == int(Op.ADDINT) and lhs == cell:
            red_sign, red_term = 1, rhs
        elif op == int(Op.ADDINT) and rhs == cell:
            red_sign, red_term = 1, lhs
        elif op == int(Op.SUBINT) and lhs == cell:
            red_sign, red_term = -1, rhs

    def fallback():
        # Execute just the CHECK_SIGNALS no-op; the singles take over
        # and control returns here at the next back-edge.
        I._countdown -= 1
        if I._countdown <= 0:
            I._on_tick()
        I.instructions += 1
        I.pc = fallthrough

    def kernel():
        stack = I.stack
        try:
            cw = stack.peek(0)
            bw = stack.peek(1)
            if not (cw & 1) or not (bw & 1):
                raise _BatchAbort()
            c0 = v.int_val(cw)
            bound = v.int_val(bw)
            total = _iterations_left(c0, bound, plan.cmp_op, step)
            if total == 0:
                # Final, failing pass of the condition.
                I._countdown -= cond_count
                if I._countdown <= 0:
                    I._on_tick()
                I.instructions += cond_count
                I.accu = _VAL_FALSE
                I.pc = plan.exit
                return
            m = max(1, I._countdown // iter_count)
            if total is not None and total < m:
                m = total
            if m > _MAX_BATCH:
                m = _MAX_BATCH
            if abs(c0) + abs(step) * (m + 1) >= (1 << 62):
                raise _BatchAbort()
            ks = c0 + step * np.arange(m, dtype=np.int64)
            counter_words = (ks << 1) | 1
            gd = vm.global_data
            gd_signed = to_signed(gd)
            read_blocks = set()    # block addresses the batch read
            scalar_reads = set()   # exact cell addresses of scalar loads
            forbidden = None       # reduction cell: loads may not touch

            # All values are *signed* machine words: scalars as Python
            # ints, per-iteration vectors as int64 arrays.  int_val is
            # then an arithmetic shift, on either representation.

            def load_cell(addr):
                if addr == forbidden:
                    raise _BatchAbort()
                scalar_reads.add(addr)
                return to_signed(space.load(addr))

            def gather(block, idx_vec):
                # One fixed block, vector of indices: slice the backing
                # words once, then fancy-index.
                if block & 1 or block < 0:
                    raise _BatchAbort()
                read_blocks.add(block)
                size = mem.size_of(block)
                lo = int(idx_vec.min())
                hi = int(idx_vec.max())
                if lo < 0 or hi >= size:
                    raise _BatchAbort()
                lo_addr = block + lo * wb
                if forbidden is not None and (
                    lo_addr <= forbidden <= block + hi * wb
                ):
                    raise _BatchAbort()
                window = hi - lo + 1
                if window <= 4 * len(idx_vec) + 64:
                    area = space.find(block)
                    base = (lo_addr - area.base) // wb
                    seg = vec_words(area.words[base: base + window])
                    return seg[idx_vec - lo]
                load = space.load
                return vec_words(
                    [load(block + int(i) * wb) for i in idx_vec]
                )

            def gather_rows(blocks_vec, idx):
                # Vector of row pointers (e.g. a matrix spine slice):
                # one load per element, headers cached per block.
                if (blocks_vec & 1).any() or (blocks_vec < 0).any():
                    raise _BatchAbort()
                load = space.load
                size_of = mem.size_of
                sizes: dict = {}
                scalar_idx = not isinstance(idx, np.ndarray)
                out = []
                for t in range(len(blocks_vec)):
                    b = int(blocks_vec[t])
                    ix = idx if scalar_idx else int(idx[t])
                    sz = sizes.get(b)
                    if sz is None:
                        sz = size_of(b)
                        sizes[b] = sz
                        read_blocks.add(b)
                    if not 0 <= ix < sz:
                        raise _BatchAbort()
                    addr = b + ix * wb
                    if addr == forbidden:
                        raise _BatchAbort()
                    out.append(load(addr))
                return vec_words(out)

            def as_index(val):
                if isinstance(val, np.ndarray):
                    if not (val & 1).all():
                        raise _BatchAbort()
                    return val >> 1
                if not val & 1:
                    raise _BatchAbort()
                return val >> 1

            def binop(op, a, b):
                av = isinstance(a, np.ndarray)
                bv = isinstance(b, np.ndarray)
                if (not (a & 1).all() if av else not a & 1):
                    raise _BatchAbort()
                if (not (b & 1).all() if bv else not b & 1):
                    raise _BatchAbort()
                ia = a >> 1
                ib = b >> 1
                if op == int(Op.MULINT):
                    # Conservative magnitude bound keeps int64 exact.
                    ma = int(np.abs(ia).max()) if av else abs(ia)
                    mb = int(np.abs(ib).max()) if bv else abs(ib)
                    if ma * mb > max_int:
                        raise _BatchAbort()
                    r = ia * ib
                elif op == int(Op.ADDINT):
                    r = ia + ib
                else:
                    r = ia - ib
                if isinstance(r, np.ndarray):
                    if int(r.min()) < min_int or int(r.max()) > max_int:
                        raise _BatchAbort()
                elif not min_int <= r <= max_int:
                    raise _BatchAbort()
                return (r << 1) | 1

            def ev(e):
                kind = e[0]
                if kind == "slot":
                    n = e[1]
                    if n == 0:
                        return counter_words
                    return to_signed(stack.peek(n))
                if kind == "const":
                    k = e[1]
                    if not min_int <= k <= max_int:
                        raise _BatchAbort()
                    return (k << 1) | 1
                if kind == "global":
                    read_blocks.add(gd_signed)
                    return load_cell(gd + e[1] * wb)
                if kind == "bin":
                    return binop(e[1], ev(e[2]), ev(e[3]))
                arr = ev(e[1])
                idx = as_index(ev(e[2]))
                if isinstance(arr, np.ndarray):
                    return gather_rows(arr, idx)
                if isinstance(idx, np.ndarray):
                    return gather(arr, idx)
                if arr & 1 or arr < 0:
                    raise _BatchAbort()
                read_blocks.add(arr)
                if not 0 <= idx < mem.size_of(arr):
                    raise _BatchAbort()
                return load_cell(arr + idx * wb)

            if red_term is not None:
                arr = ev(s_arr)
                ix = as_index(ev(s_idx))
                if isinstance(arr, np.ndarray) or isinstance(
                    ix, np.ndarray
                ):
                    raise _BatchAbort()
                if arr & 1 or arr < 0:
                    raise _BatchAbort()
                if not 0 <= ix < mem.size_of(arr):
                    raise _BatchAbort()
                cell_addr = arr + ix * wb
                if cell_addr in scalar_reads:
                    raise _BatchAbort()
                cur_w = to_signed(space.load(cell_addr))
                if not cur_w & 1:
                    raise _BatchAbort()
                forbidden = cell_addr
                term = ev(red_term)
                if not isinstance(term, np.ndarray):
                    term = np.full(m, term, dtype=np.int64)
                if not (term & 1).all():
                    raise _BatchAbort()
                tv = term >> 1
                c_init = cur_w >> 1
                peak = int(np.abs(tv).max())
                if abs(c_init) + (peak + 1) * (m + 1) >= (1 << 62):
                    raise _BatchAbort()
                # Exact per-iteration trajectory: every intermediate
                # value the reference loop would store must fit.
                running = c_init + np.cumsum(red_sign * tv)
                if (
                    int(running.min()) < min_int
                    or int(running.max()) > max_int
                ):
                    raise _BatchAbort()
                mem.set_field(arr, ix, v.val_int(int(running[-1])))
            else:
                arr = ev(s_arr)
                if isinstance(arr, np.ndarray) or arr & 1 or arr < 0:
                    raise _BatchAbort()
                value = ev(s_val)
                ix = as_index(ev(s_idx))
                size = mem.size_of(arr)
                # The batch read everything before writing anything; a
                # written block that was also read would let later
                # iterations observe stale values.
                if arr in read_blocks:
                    raise _BatchAbort()
                set_field = mem.set_field
                if isinstance(ix, np.ndarray):
                    if int(ix.min()) < 0 or int(ix.max()) >= size:
                        raise _BatchAbort()
                    if isinstance(value, np.ndarray):
                        for t in range(m):
                            set_field(
                                arr, int(ix[t]), int(value[t]) & mask
                            )
                    else:
                        w = value & mask
                        for t in range(m):
                            set_field(arr, int(ix[t]), w)
                else:
                    if not 0 <= ix < size:
                        raise _BatchAbort()
                    w = (
                        int(value[-1])
                        if isinstance(value, np.ndarray)
                        else value
                    ) & mask
                    set_field(arr, ix, w)
            counter_final = c0 + m * step
        except (_BatchAbort, IndexError, MemoryError_):
            return fallback()
        # Commit the counter and the canonical accounting.
        stack.poke(0, v.val_int(counter_final))
        done = m * iter_count
        I._countdown -= done
        if I._countdown <= 0:
            I._on_tick()
        I.instructions += done
        I.accu = _VAL_FALSE  # val_unit: the trailing ASSIGN's result
        I.pc = plan.head

    return kernel


# ---------------------------------------------------------------------------
# Program binding
# ---------------------------------------------------------------------------


def build_fast_code(
    I: "Interpreter",
    fusion: bool = True,
    kernels: bool = True,
) -> FastCode:
    """Bind the image's decoded stream to this interpreter.

    Slots are bound *lazily*: every position starts as a shared
    stateful entry that, on first execution, builds the real closure
    for that slot (kernel, superinstruction, single, or escape),
    installs it, and runs it.  Binding cost is therefore proportional
    to the code actually executed, not to image size — short programs
    pay for a handful of slots, long-running ones amortize everything.

    ``fusion`` / ``kernels`` exist for differential testing: with both
    off the fast tier is pure operand-bound single dispatch.
    """
    decoded = I.vm.code.decoded()
    n = decoded.n_units
    entries = decoded.entries
    group_at = {}
    if fusion:
        for g in decoded.groups:
            group_at[g.start] = g
    kernel_at = {}
    if kernels:
        for plan in decoded.loops:
            kernel_at[plan.head] = plan
    escape = _make_escape(I)
    handlers: list = []
    counts = [0] * n  # unbound slots take the stateful path

    def bind_slot(i):
        plan = kernel_at.get(i)
        if plan is not None:
            if isinstance(plan, CountedLoopPlan):
                handlers[i] = _make_kernel(I, plan)
            else:
                handlers[i] = _make_stride_kernel(I, plan)
            return
        e = entries[i]
        if e is None:
            handlers[i] = escape
            return
        g = group_at.get(i)
        if g is not None:
            fused = _make_fused(I, [entries[j] for j in g.members])
            if fused is not None:
                handlers[i] = fused
                counts[i] = g.count
                return
        handlers[i] = _make_single(I, e)
        counts[i] = 1

    def lazy():
        # Stateful contract: the loop synchronized pc/instructions/
        # _countdown before calling; execute the freshly bound slot
        # under the same accounting a direct dispatch would have done.
        i = I.pc
        bind_slot(i)
        k = counts[i]
        if k == 0:
            handlers[i]()
            return
        I._countdown -= k
        if I._countdown <= 0:
            I._on_tick()
        I.instructions += k
        I.pc = handlers[i]()

    handlers.extend([lazy] * n)
    return FastCode(handlers, counts)
