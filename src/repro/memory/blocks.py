"""Block headers: tag, color, size (paper §2.2.2, Figure 1).

Every heap block is preceded by a one-word header laid out exactly like
OCaml's: the low 8 bits hold the *tag* (block type), bits 8-9 hold the GC
*color*, and the remaining bits (22 on 32-bit, 54 on 64-bit) hold the
*size* in words, excluding the header itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.architecture import Architecture


class Color(enum.IntEnum):
    """GC color stored in header bits 8-9 (paper §2.4.1)."""

    WHITE = 0  #: not yet visited by the mark phase
    GRAY = 1   #: visited, children pending
    BLUE = 2   #: on the free list
    BLACK = 3  #: visited, children visited


class Tag(enum.IntEnum):
    """Well-known block tags.

    Tags below :data:`NO_SCAN_TAG` mark blocks whose fields are values and
    are traversed by the garbage collector; tags at or above it mark opaque
    data (strings, doubles, abstract blocks) that the GC — and the restart
    pointer-fixing pass — must not interpret as values.
    """

    FIRST_NON_CONSTANT = 0  #: ordinary structured blocks use tags 0..244
    FORWARD = 245           #: minor-GC forwarding marker (internal)
    LAZY = 246
    CLOSURE = 250
    OBJECT = 248
    INFIX = 249
    ABSTRACT = 251
    STRING = 252
    DOUBLE = 253
    DOUBLE_ARRAY = 254
    CUSTOM = 255


#: Blocks with tag >= NO_SCAN_TAG contain no values and are never scanned.
NO_SCAN_TAG = 251
CLOSURE_TAG = int(Tag.CLOSURE)
INFIX_TAG = int(Tag.INFIX)
OBJECT_TAG = int(Tag.OBJECT)
FORWARD_TAG = int(Tag.FORWARD)
ABSTRACT_TAG = int(Tag.ABSTRACT)
STRING_TAG = int(Tag.STRING)
DOUBLE_TAG = int(Tag.DOUBLE)
DOUBLE_ARRAY_TAG = int(Tag.DOUBLE_ARRAY)
CUSTOM_TAG = int(Tag.CUSTOM)

_TAG_BITS = 8
_COLOR_BITS = 2
_COLOR_SHIFT = _TAG_BITS
_SIZE_SHIFT = _TAG_BITS + _COLOR_BITS
_TAG_MASK = (1 << _TAG_BITS) - 1
_COLOR_MASK = ((1 << _COLOR_BITS) - 1) << _COLOR_SHIFT


@dataclass(frozen=True)
class Header:
    """A decoded block header."""

    tag: int
    color: Color
    size: int

    @property
    def scannable(self) -> bool:
        """True if the GC traverses this block's fields as values."""
        return self.tag < NO_SCAN_TAG


class HeaderCodec:
    """Encode/decode block headers for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        #: Maximum block size in words (22-bit field on 32-bit machines —
        #: the paper's "last 22-bit field contains the block size").
        self.max_size = (1 << (arch.bits - _SIZE_SHIFT)) - 1

    def make(self, tag: int, color: Color | int, size: int) -> int:
        """``Make_header``: pack (tag, color, size) into a header word."""
        if not 0 <= tag <= _TAG_MASK:
            raise ValueError(f"tag {tag} out of range")
        if not 0 <= size <= self.max_size:
            raise ValueError(
                f"block size {size} exceeds the {self.arch.bits}-bit header "
                f"size field (max {self.max_size})"
            )
        return (size << _SIZE_SHIFT) | (int(color) << _COLOR_SHIFT) | tag

    def tag(self, header: int) -> int:
        """``Tag_hd``: extract the tag field."""
        return header & _TAG_MASK

    def color(self, header: int) -> Color:
        """``Color_hd``: extract the color field."""
        return Color((header & _COLOR_MASK) >> _COLOR_SHIFT)

    def size(self, header: int) -> int:
        """``Wosize_hd``: extract the size-in-words field."""
        return header >> _SIZE_SHIFT

    def decode(self, header: int) -> Header:
        """Decode a full :class:`Header`."""
        return Header(self.tag(header), self.color(header), self.size(header))

    def with_color(self, header: int, color: Color | int) -> int:
        """Return the header with its color field replaced."""
        return (header & ~_COLOR_MASK & self.arch.word_mask) | (
            int(color) << _COLOR_SHIFT
        )

    def is_blue(self, header: int) -> bool:
        """True if the block is on the free list."""
        return self.color(header) is Color.BLUE

    def scannable(self, header: int) -> bool:
        """True if the GC traverses this block's fields."""
        return self.tag(header) < NO_SCAN_TAG
