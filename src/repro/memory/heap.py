"""The major heap: chunks, freelist, page table (paper §2.1, §2.4).

The heap is an ordered list of *chunks*, each an integral number of 4 KiB
pages, obtained from the (simulated) OS as needed.  Free space is a linked
list of BLUE blocks threaded *through the heap itself*: the first field of
every free block holds a pointer to the next free block.  Because the
freelist lives inside the heap, dumping the chunks raw preserves it — the
paper's step 8 relies on exactly this, saving only the freelist head
pointer among the VM globals (step 9).

A page table records which 4 KiB pages belong to the heap so that
``is_in_heap`` can classify arbitrary words, which both the GC and the
restart pointer-fixing pass depend on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.arch.architecture import Architecture
from repro.errors import HeapExhausted
from repro.memory.blocks import Color, HeaderCodec
from repro.memory.layout import AddressSpace, AreaKind, MemoryArea

#: Size of one heap page in bytes (paper §2.4: "memory pages of 4 KB each").
PAGE_SIZE = 4096

#: Null link terminating the freelist.
NULL = 0

#: Default chunk size in words; like OCaml's ``Heap_chunk_def``, chosen so
#: a chunk is an integral number of pages on both word sizes.
DEFAULT_CHUNK_WORDS = 31 * 1024


class HeapChunk:
    """One heap chunk: a memory area plus its position in the chunk chain."""

    __slots__ = ("area", "next", "header_map")

    def __init__(self, area: MemoryArea) -> None:
        self.area = area
        self.next: "HeapChunk | None" = None
        #: One byte per word, 1 where a block header starts.  Maintained
        #: incrementally by the allocator and the sweep/compact merge
        #: loops so the checkpoint writer can emit the block-extent index
        #: without walking the chunk.  ``None`` means unknown (rebuilt on
        #: demand by a discovery walk).
        self.header_map: bytearray | None = None

    @property
    def base(self) -> int:
        """First byte address of the chunk."""
        return self.area.base

    @property
    def end(self) -> int:
        """One-past-the-end byte address."""
        return self.area.end

    @property
    def n_words(self) -> int:
        """Chunk size in words."""
        return self.area.n_words


class Heap:
    """The major (old-generation) heap."""

    def __init__(
        self,
        space: AddressSpace,
        arch: Architecture,
        heap_base: int,
        chunk_stride: int,
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ) -> None:
        self.space = space
        self.arch = arch
        self.headers = HeaderCodec(arch)
        self._wb = arch.word_bytes
        self._heap_base = heap_base
        self._chunk_stride = chunk_stride
        self.chunk_words = chunk_words
        self.chunks: list[HeapChunk] = []
        #: Pointer (block address) of the first free block, or NULL.
        self.freelist_head: int = NULL
        #: Pages (addr >> 12) belonging to heap chunks.
        self.page_table: set[int] = set()
        #: Page -> owning chunk, for O(1) header-map bookkeeping.
        self._page_chunk: dict[int, HeapChunk] = {}
        #: Words allocated in the major heap since the last major slice —
        #: feeds the GC pacing controller.
        self.allocated_words: int = 0
        self._next_chunk_slot = 0
        #: Dirty-region set shared with the memory manager's
        #: :class:`~repro.memory.dirty.DirtyTracker` (a standalone heap
        #: keeps a private set nobody reads).  Header and freelist
        #: writes mark regions here so incremental checkpoints see
        #: allocator and GC mutations, not just the mutator's.
        self.dirty_regions: set[int] = set()
        self.dirty_shift: int = 13  # matches the default 1 KiB-of-words
        if chunk_words * self._wb > chunk_stride:
            raise ValueError("chunk size exceeds the platform chunk stride")

    def attach_dirty(self, tracker) -> None:
        """Share a :class:`~repro.memory.dirty.DirtyTracker`'s region set."""
        self.dirty_regions = tracker.regions
        self.dirty_shift = tracker.shift

    # -- chunk management -----------------------------------------------------

    def add_chunk(self, min_words: int = 0) -> HeapChunk:
        """Grow the heap by one chunk (>= ``min_words`` words of payload).

        The whole chunk becomes a single BLUE block pushed onto the
        freelist, mirroring OCaml's ``caml_add_to_heap``.
        """
        n_words = max(self.chunk_words, min_words + 1)
        # Round up to an integral number of pages.
        page_words = PAGE_SIZE // self._wb
        n_words = -(-n_words // page_words) * page_words
        base = self._heap_base + self._next_chunk_slot * self._chunk_stride
        if n_words * self._wb > self._chunk_stride:
            raise HeapExhausted(
                f"allocation of {min_words} words exceeds the maximum chunk "
                f"size of this platform layout"
            )
        self._next_chunk_slot += 1
        area = MemoryArea(
            AreaKind.HEAP_CHUNK,
            base,
            n_words,
            self.arch,
            label=f"heap-chunk-{len(self.chunks)}",
        )
        self.space.map(area)
        chunk = HeapChunk(area)
        if self.chunks:
            self.chunks[-1].next = chunk
        self.chunks.append(chunk)
        for page in range(base // PAGE_SIZE, area.end // PAGE_SIZE):
            self.page_table.add(page)
            self._page_chunk[page] = chunk
        # A fresh chunk is entirely new content for a delta checkpoint.
        self.dirty_regions.update(
            range(base >> self.dirty_shift,
                  ((area.end - 1) >> self.dirty_shift) + 1)
        )
        # One big free block covering the chunk.
        area.words[0] = self.headers.make(0, Color.BLUE, n_words - 1)
        chunk.header_map = bytearray(n_words)
        chunk.header_map[0] = 1
        block = base + self._wb
        self.free_block(block)
        return chunk

    def adopt_chunk(
        self, area: MemoryArea, header_map: bytearray | None = None
    ) -> HeapChunk:
        """Adopt an externally built chunk area (used by restart)."""
        self.space.map(area)
        self.dirty_regions.update(
            range(area.base >> self.dirty_shift,
                  ((area.end - 1) >> self.dirty_shift) + 1)
        )
        chunk = HeapChunk(area)
        chunk.header_map = header_map
        if self.chunks:
            self.chunks[-1].next = chunk
        self.chunks.append(chunk)
        for page in range(area.base // PAGE_SIZE, area.end // PAGE_SIZE):
            self.page_table.add(page)
            self._page_chunk[page] = chunk
        slot = (area.base - self._heap_base) // self._chunk_stride + 1
        self._next_chunk_slot = max(self._next_chunk_slot, slot)
        return chunk

    # -- block-extent bookkeeping ----------------------------------------------

    def _mark_header(self, header_addr: int) -> None:
        """Record a new block-header position (allocation carve sites)."""
        chunk = self._page_chunk.get(header_addr >> 12)
        if chunk is not None and chunk.header_map is not None:
            chunk.header_map[(header_addr - chunk.base) // self._wb] = 1

    def block_positions(self, chunk: HeapChunk) -> np.ndarray:
        """Word indices of every block header in ``chunk`` (ascending).

        Served from the incrementally maintained header map when it is
        valid; otherwise rebuilt by one discovery walk (and cached).
        """
        hm = chunk.header_map
        if hm is None:
            hm = self._rebuild_header_map(chunk)
        # nonzero on a bool view is ~6x faster than on uint8 (numpy's
        # bool path counts with memchr-style scans); map bytes are 0/1.
        return np.nonzero(np.frombuffer(hm, dtype=np.uint8).view(np.bool_))[
            0
        ].astype(np.uint32)

    def _rebuild_header_map(self, chunk: HeapChunk) -> bytearray:
        hs = self.headers
        # Walk a staged (numpy-backed) area without materializing its
        # word list — the walk only reads headers.
        staged = chunk.area.peek_staged()
        words = staged if staged is not None else chunk.area.words
        n = chunk.area.n_words
        hm = bytearray(n)
        i = 0
        while i < n:
            hm[i] = 1
            i += 1 + hs.size(int(words[i]))
        chunk.header_map = hm
        return hm

    # -- classification ---------------------------------------------------------

    def is_in_heap(self, addr: int) -> bool:
        """True if ``addr`` lies in a major-heap page.

        Chunks are page-aligned and an integral number of pages, so the
        page table alone answers membership — this is exactly the role of
        OCaml's page table (paper §2.4).
        """
        return (addr >> 12) in self.page_table

    # -- block primitives ---------------------------------------------------------

    def header_addr(self, block: int) -> int:
        """Address of the header word of a block pointer."""
        return block - self._wb

    def load_header(self, block: int) -> int:
        """Read the header of a block."""
        return self.space.load(block - self._wb)

    def store_header(self, block: int, header: int) -> None:
        """Write the header of a block."""
        self.dirty_regions.add((block - self._wb) >> self.dirty_shift)
        self.space.store(block - self._wb, header)

    def field(self, block: int, i: int) -> int:
        """``Field(block, i)``."""
        return self.space.load(block + i * self._wb)

    def set_field(self, block: int, i: int, value: int) -> None:
        """``Field(block, i) = value`` (no GC barrier at this level, but
        the write still dirties its region for delta checkpoints)."""
        addr = block + i * self._wb
        self.dirty_regions.add(addr >> self.dirty_shift)
        self.space.store(addr, value)

    # -- freelist -------------------------------------------------------------------

    def free_block(self, block: int) -> None:
        """Color a block BLUE and push it on the freelist."""
        hd = self.load_header(block)
        self.store_header(block, self.headers.with_color(hd, Color.BLUE))
        self.set_field(block, 0, self.freelist_head)
        self.freelist_head = block

    def iter_freelist(self) -> Iterator[int]:
        """Iterate block pointers on the freelist."""
        cur = self.freelist_head
        seen = 0
        while cur != NULL:
            yield cur
            cur = self.field(cur, 0)
            seen += 1
            if seen > 1 << 30:  # pragma: no cover - corruption guard
                raise RuntimeError("freelist cycle detected")

    def free_words(self) -> int:
        """Total words (payload + headers) on the freelist."""
        hs = self.headers
        return sum(hs.size(self.load_header(b)) + 1 for b in self.iter_freelist())

    def alloc(self, wosize: int, tag: int, color: Color = Color.WHITE) -> int:
        """First-fit allocation of a block in the major heap.

        Grows the heap with a fresh chunk when no free block fits
        (paper §2.4: "if there is no more space ... OCaml extends the heap
        by calling malloc").
        """
        if wosize < 1:
            raise ValueError("major-heap blocks have at least one field")
        block = self._try_alloc(wosize, tag, color)
        if block is None:
            self.add_chunk(min_words=wosize + 1)
            block = self._try_alloc(wosize, tag, color)
            if block is None:  # pragma: no cover - add_chunk guarantees fit
                raise HeapExhausted(f"cannot allocate {wosize} words")
        self.allocated_words += wosize + 1
        return block

    def _try_alloc(self, wosize: int, tag: int, color: Color) -> int | None:
        hs = self.headers
        prev = NULL
        cur = self.freelist_head
        while cur != NULL:
            nxt = self.field(cur, 0)
            size = hs.size(self.load_header(cur))
            if size == wosize:
                # Exact fit: unlink and recolor.
                self._unlink(prev, nxt)
                self.store_header(cur, hs.make(tag, color, wosize))
                return cur
            if size == wosize + 1:
                # Splitting would leave a bare header: make it a white
                # zero-size fragment (as OCaml's freelist does) and carve
                # the allocation from the tail.
                self._unlink(prev, nxt)
                self.store_header(cur, hs.make(0, Color.WHITE, 0))
                block = cur + self._wb
                self.store_header(block, hs.make(tag, color, wosize))
                self._mark_header(cur)
                return block
            if size >= wosize + 2:
                # Shrink the free block in place and carve from its tail;
                # no relinking needed.
                remaining = size - wosize - 1
                hd = self.load_header(cur)
                self.store_header(
                    cur, hs.make(hs.tag(hd), Color.BLUE, remaining)
                )
                block = cur + (remaining + 1) * self._wb
                self.store_header(block, hs.make(tag, color, wosize))
                self._mark_header(block - self._wb)
                return block
            prev = cur
            cur = nxt
        return None

    def _unlink(self, prev: int, nxt: int) -> None:
        if prev == NULL:
            self.freelist_head = nxt
        else:
            self.set_field(prev, 0, nxt)

    def rebuild_freelist(self) -> None:
        """Re-thread the freelist from the BLUE blocks found in the heap.

        Used by restart paths that rebuild the heap block-by-block (the
        32<->64-bit conversion) where saved freelist links are no longer
        meaningful.
        """
        self.freelist_head = NULL
        blues: list[int] = []
        for _, block, hd in self.iter_blocks():
            # A blue block needs at least one field to hold the freelist
            # link; zero-sized free space stays as a white fragment.
            if self.headers.is_blue(hd) and self.headers.size(hd) >= 1:
                blues.append(block)
        for block in reversed(blues):
            self.set_field(block, 0, self.freelist_head)
            self.freelist_head = block

    # -- whole-heap walks --------------------------------------------------------------

    def iter_blocks(self) -> Iterator[tuple[HeapChunk, int, int]]:
        """Yield ``(chunk, block_pointer, header)`` for every block.

        This is the linear chunk walk the sweep phase and the restart
        pointer-fixing pass use (paper Figure 7).
        """
        hs = self.headers
        wb = self._wb
        for chunk in self.chunks:
            words = chunk.area.words
            base = chunk.base
            i = 0
            n = len(words)
            while i < n:
                hd = words[i]
                yield chunk, base + (i + 1) * wb, hd
                i += 1 + hs.size(hd)

    def live_words(self) -> int:
        """Words in non-BLUE blocks (headers included)."""
        hs = self.headers
        return sum(
            hs.size(hd) + 1
            for _, _, hd in self.iter_blocks()
            if not hs.is_blue(hd)
        )

    def total_words(self) -> int:
        """Total heap size in words across all chunks."""
        return sum(c.n_words for c in self.chunks)

    def check_integrity(self) -> None:
        """Validate chunk coverage and freelist/color consistency.

        Raises ``AssertionError`` on corruption; used heavily by tests.
        """
        hs = self.headers
        blues_in_heap = set()
        for chunk in self.chunks:
            covered = 0
            for c, block, hd in self.iter_blocks():
                if c is not chunk:
                    continue
                covered += 1 + hs.size(hd)
                if hs.is_blue(hd):
                    blues_in_heap.add(block)
            assert covered == chunk.n_words, (
                f"chunk {chunk.area.label} coverage {covered} != {chunk.n_words}"
            )
        on_list = set(self.iter_freelist())
        assert on_list <= blues_in_heap, "freelist entry is not a BLUE block"
        for block in blues_in_heap:
            assert hs.size(self.load_header(block)) >= 1 or block not in on_list
