"""Tagged word values, as in OCaml (paper §2.2).

A machine word is either an immediate integer — least-significant bit 1,
value in the remaining ``bits - 1`` bits — or a word-aligned pointer with
least-significant bit 0.  This single-bit discrimination is what lets the
restart code classify every saved word at recovery time.
"""

from __future__ import annotations

from repro.arch.architecture import Architecture


class ValueCodec:
    """Encode/decode tagged values for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._bits = arch.bits
        self._mask = arch.word_mask
        #: Largest immediate integer: 2**(bits-2) - 1.
        self.max_int = (1 << (arch.bits - 2)) - 1
        #: Smallest immediate integer: -(2**(bits-2)).
        self.min_int = -(1 << (arch.bits - 2))

    # -- immediates ---------------------------------------------------------

    def val_int(self, n: int) -> int:
        """``Val_int``: box a Python int as an immediate (wraps silently).

        Wrapping mirrors the hardware: OCaml ints are ``bits - 1`` wide and
        overflow by discarding high bits, preserving two's-complement sign.
        """
        return ((n << 1) | 1) & self._mask

    def int_val(self, v: int) -> int:
        """``Int_val``: unbox an immediate into a signed Python int."""
        return self.arch.to_signed(v) >> 1

    def is_int(self, v: int) -> bool:
        """``Is_long``: true if the word is an immediate integer."""
        return bool(v & 1)

    def is_block(self, v: int) -> bool:
        """``Is_block``: true if the word is a (potential) pointer."""
        return not (v & 1)

    # -- common constants ---------------------------------------------------

    @property
    def val_unit(self) -> int:
        """The ``unit`` value, ``Val_int(0)``."""
        return 1

    @property
    def val_false(self) -> int:
        """``false``, represented as ``Val_int(0)``."""
        return 1

    @property
    def val_true(self) -> int:
        """``true``, represented as ``Val_int(1)``."""
        return 3

    def val_bool(self, b: bool) -> int:
        """Box a Python bool."""
        return 3 if b else 1

    def bool_val(self, v: int) -> bool:
        """Unbox a boolean value (any non-zero immediate is true)."""
        return self.int_val(v) != 0

    # -- arithmetic helpers used by the interpreter ---------------------------

    def fits(self, n: int) -> bool:
        """True if ``n`` is representable without wrapping."""
        return self.min_int <= n <= self.max_int
