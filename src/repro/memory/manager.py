"""Memory manager: the allocation and mutation interface of the VM.

Gathers the address space, the two heap generations, the atom table and
the C-global area behind one interface; implements the minor/major
allocation split, the write barrier feeding the reference table
(paper §2.4.1, ``reftable``), and typed constructors for blocks, strings
and floats.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.arch.architecture import Architecture
from repro.arch.platforms import Platform
from repro.errors import VMRuntimeError
from repro.memory.atoms import AtomTable
from repro.memory.blocks import (
    Color,
    DOUBLE_TAG,
    HeaderCodec,
    STRING_TAG,
)
from repro.memory.cglobals import CGlobalArea
from repro.memory.dirty import DEFAULT_REGION_WORDS, DirtyTracker
from repro.memory.floats import FloatCodec
from repro.memory.heap import Heap
from repro.memory.layout import AddressSpace
from repro.memory.minor_heap import MAX_YOUNG_WOSIZE, MinorHeap
from repro.memory.strings import StringCodec
from repro.memory.values import ValueCodec


class MemoryManager:
    """Owns all VM memory and provides the mutator interface."""

    def __init__(
        self,
        platform: Platform,
        minor_words: int | None = None,
        chunk_words: int | None = None,
        region_words: int | None = None,
    ) -> None:
        arch: Architecture = platform.arch
        self.platform = platform
        self.arch = arch
        self.space = AddressSpace(arch)
        self.values = ValueCodec(arch)
        self.headers = HeaderCodec(arch)
        self.strings = StringCodec(arch)
        self.floats = FloatCodec(arch)
        self._wb = arch.word_bytes

        layout = platform.layout
        heap_kwargs = {}
        if chunk_words is not None:
            heap_kwargs["chunk_words"] = chunk_words
        self.heap = Heap(
            self.space, arch, layout.heap_base, layout.chunk_stride,
            **heap_kwargs,
        )
        minor_kwargs = {}
        if minor_words is not None:
            minor_kwargs["n_words"] = minor_words
        self.minor = MinorHeap(
            self.space, arch, layout.minor_base, **minor_kwargs
        )
        self.atoms = AtomTable(self.space, arch, layout.atom_base)
        self.cglobals = CGlobalArea(self.space, arch, layout.cglobal_base)

        #: Dirty-region tracker for incremental checkpoints.  The heap
        #: shares the tracker's region set so its header/freelist writes
        #: mark regions without an extra indirection; the hot-path
        #: barrier below caches the bound ``add`` the same way.
        self.dirty = DirtyTracker(
            arch.word_bytes, region_words or DEFAULT_REGION_WORDS
        )
        self._dirty_add = self.dirty.regions.add
        self._dirty_shift = self.dirty.shift
        self.heap.attach_dirty(self.dirty)
        self.cglobals.on_write = self.dirty.note_globals

        #: Field addresses in the major heap holding young pointers.
        self.reftable: set[int] = set()
        #: Called when the minor heap is full; must free space (minor GC).
        self.minor_gc_hook: Optional[Callable[[], None]] = None
        #: Consulted for the mark-phase deletion barrier and allocation
        #: color; set by the GC once constructed.
        self.major_gc = None

    # -- classification --------------------------------------------------------

    def is_young(self, v: int) -> bool:
        """True if ``v`` is a pointer into the young generation."""
        return self.minor.contains(v)

    def is_in_heap(self, v: int) -> bool:
        """True if ``v`` points into the major heap."""
        return self.heap.is_in_heap(v)

    def is_heap_block(self, v: int) -> bool:
        """True if ``v`` is a pointer into either heap generation."""
        return self.values.is_block(v) and (
            self.heap.is_in_heap(v) or self.minor.contains(v)
        )

    # -- allocation --------------------------------------------------------------

    def alloc(self, wosize: int, tag: int) -> int:
        """Allocate a block: young if small, major heap if large.

        Zero-sized blocks are the statically allocated atoms.
        """
        if wosize == 0:
            return self.atoms.atom(tag)
        if wosize <= MAX_YOUNG_WOSIZE:
            return self.alloc_young(wosize, tag)
        return self.alloc_shr(wosize, tag)

    def alloc_young(self, wosize: int, tag: int) -> int:
        """Allocate in the young generation, running a minor GC if full."""
        block = self.minor.try_alloc(wosize, tag)
        if block is None:
            if self.minor_gc_hook is None:
                raise VMRuntimeError(
                    "minor heap exhausted and no GC hook installed"
                )
            self.minor_gc_hook()
            block = self.minor.try_alloc(wosize, tag)
            if block is None:
                raise VMRuntimeError(
                    f"minor heap too small for a {wosize}-word block"
                )
        return block

    def alloc_shr(self, wosize: int, tag: int) -> int:
        """``caml_alloc_shr``: allocate directly in the major heap.

        The block color honours the incremental collector's invariant
        (black while marking, phase-dependent while sweeping).
        """
        block = self.heap.alloc(wosize, tag, Color.WHITE)
        if self.major_gc is not None:
            color = self.major_gc.allocation_color(block)
            if color is not Color.WHITE:
                hd = self.heap.load_header(block)
                self.heap.store_header(
                    block, self.headers.with_color(hd, color)
                )
        return block

    # -- block access ---------------------------------------------------------------

    def header_of(self, block: int) -> int:
        """Read the header word of any block (either generation, atoms)."""
        return self.space.load(block - self._wb)

    def tag_of(self, block: int) -> int:
        """Tag of a block."""
        return self.headers.tag(self.header_of(block))

    def size_of(self, block: int) -> int:
        """Size in words of a block's payload."""
        return self.headers.size(self.header_of(block))

    def field(self, block: int, i: int) -> int:
        """``Field(block, i)`` with bounds implied by the address space."""
        return self.space.load(block + i * self._wb)

    def set_field(self, block: int, i: int, value: int) -> None:
        """``caml_modify``: mutate a field with the GC write barriers.

        * Deletion barrier: while the major collector is marking, the old
          contents are darkened so the snapshot invariant holds.
        * Generational barrier: a young pointer stored into a major-heap
          block records the field address in the reference table.
        """
        addr = block + i * self._wb
        in_major = self.heap.is_in_heap(addr)
        if in_major:
            self._dirty_add(addr >> self._dirty_shift)
            if self.major_gc is not None and self.major_gc.is_marking:
                old = self.space.load(addr)
                self.major_gc.darken(old)
        self.space.store(addr, value)
        if in_major and self.is_young(value):
            self.reftable.add(addr)
        elif addr in self.reftable and not self.is_young(value):
            self.reftable.discard(addr)

    def init_field(self, block: int, i: int, value: int) -> None:
        """Initializing write (no deletion barrier needed).

        Still records young pointers stored into major blocks — needed for
        large blocks allocated directly in the major heap.
        """
        addr = block + i * self._wb
        self.space.store(addr, value)
        if self.heap.is_in_heap(addr):
            self._dirty_add(addr >> self._dirty_shift)
            if self.is_young(value):
                self.reftable.add(addr)

    def mark_dirty_range(self, addr: int, n_words: int) -> None:
        """Mark major-heap words written outside the barrier (raw stores
        like minor-GC promotion copies) dirty for incremental
        checkpoints."""
        self.dirty.mark_range(addr, n_words)

    def block_payload(self, block: int) -> list[int]:
        """All payload words of a block (copy)."""
        size = self.size_of(block)
        return [self.field(block, i) for i in range(size)]

    # -- typed constructors -----------------------------------------------------------

    def make_block(self, tag: int, fields: list[int]) -> int:
        """Allocate and initialize a structured block."""
        if not fields:
            return self.atoms.atom(tag)
        block = self.alloc(len(fields), tag)
        for i, f in enumerate(fields):
            self.init_field(block, i, f)
        return block

    def make_string(self, data: bytes) -> int:
        """Allocate a STRING block holding ``data``."""
        words = self.strings.encode(data)
        block = self.alloc(len(words), STRING_TAG)
        for i, w in enumerate(words):
            self.init_field(block, i, w)
        return block

    def read_string(self, block: int) -> bytes:
        """Decode a STRING block back into bytes."""
        if self.tag_of(block) != STRING_TAG:
            raise VMRuntimeError("not a string block")
        return self.strings.decode(self.block_payload(block))

    def string_length(self, block: int) -> int:
        """``caml_string_length``."""
        return self.strings.byte_length(self.block_payload(block))

    def string_get(self, block: int, i: int) -> int:
        """Read byte ``i`` of a string block."""
        if not 0 <= i < self.string_length(block):
            raise VMRuntimeError("string index out of bounds")
        w = self.field(block, i // self._wb)
        return self.arch.byte_of_word(w, i % self._wb)

    def string_set(self, block: int, i: int, byte: int) -> None:
        """Write byte ``i`` of a string block."""
        if not 0 <= i < self.string_length(block):
            raise VMRuntimeError("string index out of bounds")
        wi = i // self._wb
        w = self.field(block, wi)
        self.set_field(
            block, wi, self.arch.set_byte_of_word(w, i % self._wb, byte)
        )

    def make_float(self, x: float) -> int:
        """Allocate a DOUBLE block holding ``x``."""
        words = self.floats.encode(x)
        block = self.alloc(len(words), DOUBLE_TAG)
        for i, w in enumerate(words):
            self.init_field(block, i, w)
        return block

    def read_float(self, block: int) -> float:
        """Decode a DOUBLE block."""
        if self.tag_of(block) != DOUBLE_TAG:
            raise VMRuntimeError("not a float block")
        return self.floats.decode(self.block_payload(block))
