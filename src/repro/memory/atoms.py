"""The atom table (paper §2.2.1).

256 statically allocated zero-sized blocks, one per possible tag, living
*outside* the heap.  ``Atom(t)`` is a pointer to the (empty) payload of
the ``t``-th entry; it is how OCaml represents ``[||]``, constant
constructors of abstract types, etc.  The table is part of the
checkpointed data (paper §4.1 step 9) and its pointers are adjusted on
restart like any others, using the saved area boundaries.
"""

from __future__ import annotations

from repro.arch.architecture import Architecture
from repro.memory.blocks import Color, HeaderCodec
from repro.memory.layout import AddressSpace, AreaKind, MemoryArea

#: Number of entries (one per possible 8-bit tag).
ATOM_COUNT = 256


class AtomTable:
    """The static table of 256 zero-sized blocks."""

    def __init__(self, space: AddressSpace, arch: Architecture, base: int) -> None:
        self.arch = arch
        self._wb = arch.word_bytes
        headers = HeaderCodec(arch)
        # Each entry is a lone header word; the atom pointer addresses the
        # (empty) payload just after it, so the table is ATOM_COUNT + 1
        # words: header_0 .. header_255 plus one trailing word so that
        # Atom(255) is still a mappable address.
        self.area = MemoryArea(
            AreaKind.ATOMS, base, ATOM_COUNT + 1, arch, label="atom-table"
        )
        for t in range(ATOM_COUNT):
            self.area.words[t] = headers.make(t, Color.WHITE, 0)
        space.map(self.area)

    def atom(self, tag: int) -> int:
        """``Atom(tag)``: pointer value of the ``tag``-th atom."""
        if not 0 <= tag < ATOM_COUNT:
            raise ValueError(f"atom tag {tag} out of range")
        return self.area.base + (tag + 1) * self._wb

    def contains(self, addr: int) -> bool:
        """True if ``addr`` points into the atom table."""
        return self.area.contains(addr)

    def tag_of(self, addr: int) -> int:
        """Recover the tag of an atom pointer."""
        return (addr - self.area.base) // self._wb - 1
