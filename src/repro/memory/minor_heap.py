"""The young generation (paper §2.4).

A fixed-size area between ``young_start`` and ``young_end``; allocation is
a linear bump.  When full, a minor collection copies the live data into
the major heap and resets the bump pointer, leaving the area empty — which
is why the checkpoint writer runs a minor collection first and never saves
the minor heap (paper §4.1 step 2).
"""

from __future__ import annotations

from repro.arch.architecture import Architecture
from repro.memory.blocks import Color, HeaderCodec
from repro.memory.layout import AddressSpace, AreaKind, MemoryArea

#: Default young-generation size in words (OCaml's ``Minor_heap_def``-ish).
DEFAULT_MINOR_WORDS = 32 * 1024

#: Blocks larger than this are allocated directly in the major heap, like
#: OCaml's ``Max_young_wosize``.
MAX_YOUNG_WOSIZE = 256


class MinorHeap:
    """Bump-allocated young generation."""

    def __init__(
        self,
        space: AddressSpace,
        arch: Architecture,
        base: int,
        n_words: int = DEFAULT_MINOR_WORDS,
    ) -> None:
        self.space = space
        self.arch = arch
        self.headers = HeaderCodec(arch)
        self._wb = arch.word_bytes
        self.area = MemoryArea(
            AreaKind.MINOR_HEAP, base, n_words, arch, label="minor-heap"
        )
        space.map(self.area)
        #: Next free word index (bump pointer).
        self._next = 0

    @property
    def young_start(self) -> int:
        """First byte address of the young generation."""
        return self.area.base

    @property
    def young_end(self) -> int:
        """One-past-the-end byte address of the young generation."""
        return self.area.end

    @property
    def used_words(self) -> int:
        """Words currently allocated in the young generation."""
        return self._next

    @property
    def free_words(self) -> int:
        """Words still available before a minor collection is needed."""
        return self.area.n_words - self._next

    def contains(self, addr: int) -> bool:
        """True if ``addr`` points into the young generation."""
        return self.young_start <= addr < self.young_end

    def try_alloc(self, wosize: int, tag: int) -> int | None:
        """Bump-allocate a block; ``None`` when a minor GC is needed."""
        if wosize < 1:
            raise ValueError("young blocks have at least one field")
        need = wosize + 1
        if self._next + need > self.area.n_words:
            return None
        hd_index = self._next
        self._next += need
        self.area.words[hd_index] = self.headers.make(tag, Color.WHITE, wosize)
        return self.area.base + (hd_index + 1) * self._wb

    def reset(self) -> None:
        """Empty the young generation (after a minor collection)."""
        self._next = 0

    def is_empty(self) -> bool:
        """True when no block is allocated in the young generation."""
        return self._next == 0
