"""Virtual address space: word-addressed memory areas.

The VM sees a flat virtual address space containing a handful of disjoint
*areas* (heap chunks, minor heap, stack(s), byte-code, atom table, C
globals).  A pointer value is a byte address; dereferencing goes through
the :class:`AddressSpace`, which locates the owning area by binary search
— the same role the saved *boundary addresses* play during restart
(paper §3.2.2).
"""

from __future__ import annotations

import bisect
import enum
from typing import Iterator

from repro.arch.architecture import Architecture
from repro.errors import AlignmentError, SegmentationFault


class AreaKind(enum.Enum):
    """What an area holds; drives checkpoint/restart handling."""

    HEAP_CHUNK = "heap-chunk"
    MINOR_HEAP = "minor-heap"
    STACK = "stack"
    THREAD_STACK = "thread-stack"
    CODE = "code"
    ATOMS = "atoms"
    C_GLOBALS = "c-globals"


class MemoryArea:
    """A contiguous, word-addressed region of the virtual address space.

    Word storage is a plain ``list[int]``.  The vectorized restart path
    can instead *stage* a numpy ``uint64`` array via :meth:`from_staged`;
    the list is materialized lazily on the first ``words`` access, so a
    restart followed immediately by another checkpoint never pays the
    unboxing cost for untouched chunks.

    A staged area may additionally carry a *conversion thunk* (lazy
    restore): a callable, run at most once, that converts the staged
    array in place — pointer adjustment, endianness repack — before
    anything reads it.  First ``words`` access runs the thunk and then
    materializes; :meth:`ensure_converted` runs it while keeping the
    area staged (the background drainer and the checkpoint writer use
    this so untouched chunks stay in numpy form).
    """

    __slots__ = (
        "kind", "base", "words", "word_bytes", "label", "_staged", "_thunk"
    )

    def __init__(
        self,
        kind: AreaKind,
        base: int,
        n_words: int,
        arch: Architecture,
        label: str = "",
        fill: int = 0,
    ) -> None:
        if base % arch.word_bytes:
            raise AlignmentError(
                f"area base {base:#x} not aligned to {arch.word_bytes} bytes"
            )
        self.kind = kind
        self.base = base
        self.words: list[int] = [fill] * n_words
        self.word_bytes = arch.word_bytes
        self.label = label or kind.value
        self._staged = None
        self._thunk = None

    @classmethod
    def from_staged(
        cls,
        kind: AreaKind,
        base: int,
        staged,
        arch: Architecture,
        label: str = "",
        thunk=None,
    ) -> "MemoryArea":
        """Build an area backed by a numpy ``uint64`` array.

        The ``words`` list does not exist yet; it is created (via
        ``tolist``) on first access and the staged array is dropped.
        ``thunk``, if given, is called once with the staged array (to
        convert it in place) before the first read — see
        :meth:`ensure_converted`.
        """
        if base % arch.word_bytes:
            raise AlignmentError(
                f"area base {base:#x} not aligned to {arch.word_bytes} bytes"
            )
        area = cls.__new__(cls)
        area.kind = kind
        area.base = base
        area.word_bytes = arch.word_bytes
        area.label = label or kind.value
        area._staged = staged
        area._thunk = thunk
        # The 'words' slot is intentionally left unset: __getattr__
        # materializes it on demand.
        return area

    def __getattr__(self, name: str):
        if name == "words":
            staged = self._staged
            if staged is not None:
                if self._thunk is not None:
                    self.ensure_converted()
                    staged = self._staged
                self._staged = None
                ws = staged.tolist()
                self.words = ws
                return ws
        raise AttributeError(name)

    def peek_staged(self):
        """The staged numpy array, or ``None`` once materialized."""
        return self._staged

    @property
    def pending_conversion(self) -> bool:
        """True while a lazy-restore thunk has not run yet."""
        return self._thunk is not None

    def defer_conversion(self, thunk) -> None:
        """Attach a lazy-restore thunk to an already-staged area."""
        if self._staged is None:
            raise ValueError(
                f"area {self.label} already materialized; cannot defer"
            )
        self._thunk = thunk

    def ensure_converted(self) -> None:
        """Run the pending conversion thunk (if any) without unstaging.

        The thunk is cleared *before* it runs so a re-entrant read from
        inside the conversion (impossible today, cheap insurance) sees
        the area as already converted rather than recursing.

        Staging may hold an unread chunk slice (deferred-section lazy
        restore) instead of an array; the payload bytes are read and
        decoded here, just before the conversion that needs them.
        """
        thunk = self._thunk
        if thunk is not None:
            self._thunk = None
            staged = self._staged
            materialize = getattr(staged, "materialize", None)
            if materialize is not None:
                staged = materialize()
                self._staged = staged
            thunk(staged)

    # -- geometry -----------------------------------------------------------

    @property
    def n_words(self) -> int:
        """Number of words in the area (does not materialize staging)."""
        staged = self._staged
        if staged is not None:
            return int(staged.size)
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        """Area size in bytes."""
        return self.n_words * self.word_bytes

    @property
    def end(self) -> int:
        """One-past-the-end byte address."""
        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside this area."""
        return self.base <= addr < self.end

    def index_of(self, addr: int) -> int:
        """Word index of a byte address (must be aligned and in range)."""
        off = addr - self.base
        if not 0 <= off < self.size_bytes:
            raise SegmentationFault(
                f"address {addr:#x} outside area {self.label} "
                f"[{self.base:#x}, {self.end:#x})"
            )
        if off % self.word_bytes:
            raise AlignmentError(f"misaligned access at {addr:#x}")
        return off // self.word_bytes

    def addr_of(self, index: int) -> int:
        """Byte address of a word index."""
        if not 0 <= index < self.n_words:
            raise SegmentationFault(
                f"word index {index} outside area {self.label}"
            )
        return self.base + index * self.word_bytes

    # -- access ---------------------------------------------------------------

    def load(self, addr: int) -> int:
        """Read the word at a byte address."""
        return self.words[self.index_of(addr)]

    def store(self, addr: int, value: int) -> None:
        """Write the word at a byte address."""
        self.words[self.index_of(addr)] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MemoryArea {self.label} [{self.base:#x},{self.end:#x}) "
            f"{self.n_words} words>"
        )


class AddressSpace:
    """The VM's flat virtual address space: a set of disjoint areas.

    ``find``/``load``/``store`` keep a one-entry *hit cache* of the last
    area located: field loads and stores cluster heavily on one area (a
    heap chunk, or the running stack), so the common case skips both the
    binary search and the ``index_of`` re-check of the bounds the cache
    already proved.  The cache is invalidated on every :meth:`map` /
    :meth:`unmap`, so callers that probe possibly-unmapped addresses
    must use :meth:`find_or_none` rather than catching
    :class:`SegmentationFault` — exceptions on the probe path are
    slow and the cache stays coherent either way.
    """

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._bases: list[int] = []
        self._areas: list[MemoryArea] = []
        # Last-area hit cache: [base, end) and the area itself.  The
        # empty range keeps the fast path a single comparison pair.
        self._hit_base = 0
        self._hit_end = 0
        self._hit_area: MemoryArea | None = None

    # -- mapping ---------------------------------------------------------------

    def map(self, area: MemoryArea) -> MemoryArea:
        """Register an area; it must not overlap an existing one."""
        i = bisect.bisect_right(self._bases, area.base)
        if i > 0 and self._areas[i - 1].end > area.base:
            raise SegmentationFault(
                f"area {area.label} overlaps {self._areas[i - 1].label}"
            )
        if i < len(self._areas) and area.end > self._areas[i].base:
            raise SegmentationFault(
                f"area {area.label} overlaps {self._areas[i].label}"
            )
        self._bases.insert(i, area.base)
        self._areas.insert(i, area)
        self._hit_base = self._hit_end = 0
        self._hit_area = None
        return area

    def unmap(self, area: MemoryArea) -> None:
        """Remove an area (e.g. a freed thread stack)."""
        i = bisect.bisect_left(self._bases, area.base)
        if i >= len(self._areas) or self._areas[i] is not area:
            raise SegmentationFault(f"area {area.label} is not mapped")
        del self._bases[i]
        del self._areas[i]
        self._hit_base = self._hit_end = 0
        self._hit_area = None

    def find(self, addr: int) -> MemoryArea:
        """Locate the area containing a byte address."""
        if self._hit_base <= addr < self._hit_end:
            return self._hit_area
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            area = self._areas[i]
            if addr < area.end:
                self._hit_base = area.base
                self._hit_end = area.end
                self._hit_area = area
                return area
        raise SegmentationFault(f"unmapped address {addr:#x}")

    def find_or_none(self, addr: int) -> MemoryArea | None:
        """Like :meth:`find` but returns ``None`` for unmapped addresses."""
        if self._hit_base <= addr < self._hit_end:
            return self._hit_area
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            area = self._areas[i]
            if addr < area.end:
                self._hit_base = area.base
                self._hit_end = area.end
                self._hit_area = area
                return area
        return None

    # -- access ---------------------------------------------------------------

    def load(self, addr: int) -> int:
        """Read the word at a byte address anywhere in the space."""
        if self._hit_base <= addr < self._hit_end:
            # Area-local fast path: the cache bounds subsume the
            # index_of range check; only alignment is left to verify.
            # `area.words` still routes a staged chunk through the
            # lazy-conversion thunk (MemoryArea.__getattr__).
            area = self._hit_area
            off = addr - self._hit_base
            if off % area.word_bytes:
                raise AlignmentError(f"misaligned access at {addr:#x}")
            return area.words[off // area.word_bytes]
        return self.find(addr).load(addr)

    def store(self, addr: int, value: int) -> None:
        """Write the word at a byte address anywhere in the space."""
        if self._hit_base <= addr < self._hit_end:
            area = self._hit_area
            off = addr - self._hit_base
            if off % area.word_bytes:
                raise AlignmentError(f"misaligned access at {addr:#x}")
            area.words[off // area.word_bytes] = value
            return
        self.find(addr).store(addr, value)

    def areas(self) -> Iterator[MemoryArea]:
        """All mapped areas in ascending base order."""
        return iter(self._areas)

    def areas_of_kind(self, kind: AreaKind) -> list[MemoryArea]:
        """All mapped areas of one kind, ascending base order."""
        return [a for a in self._areas if a.kind is kind]
