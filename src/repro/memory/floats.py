"""Floating-point block payload encoding (paper §2.2.2).

Doubles are stored in IEEE 754 double-precision format in the block's
payload: two words on a 32-bit architecture, one word on a 64-bit
architecture, laid out in memory order.  A cross-endian restart therefore
re-encodes the *8-byte unit*, not each word independently.
"""

from __future__ import annotations

import struct

from repro.arch.architecture import Architecture, Endianness


class FloatCodec:
    """Pack/unpack IEEE doubles into word sequences for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._wb = arch.word_bytes
        self._fmt = ("<" if arch.endianness is Endianness.LITTLE else ">") + "d"

    @property
    def words_per_double(self) -> int:
        """Payload size of a double block in words (2 on 32-bit, 1 on 64)."""
        return 8 // self._wb

    def encode(self, x: float) -> list[int]:
        """Pack one double into its in-memory word sequence."""
        raw = struct.pack(self._fmt, x)
        return [
            self.arch.word_from_bytes(raw[i : i + self._wb])
            for i in range(0, 8, self._wb)
        ]

    def decode(self, words: list[int]) -> float:
        """Unpack an in-memory word sequence back into a double."""
        if len(words) != self.words_per_double:
            raise ValueError(
                f"double block payload must be {self.words_per_double} words"
            )
        raw = b"".join(self.arch.word_to_memory_bytes(w) for w in words)
        return struct.unpack(self._fmt, raw)[0]
