"""The VM stack (paper §2.1).

Allocated at VM initialization with a small default size (the paper's
OCVM uses 16 KiB) and reallocated at double the size when it fills up.
The stack grows *downward* from ``stack_high`` like OCVM's: ``sp`` starts
at the high end and decreases on push.  Values on the stack are tagged
words plus raw code addresses in return frames, exactly the mix the
restart pointer-fixing pass must classify.
"""

from __future__ import annotations

from repro.arch.architecture import Architecture
from repro.errors import VMRuntimeError
from repro.memory.layout import AddressSpace, AreaKind, MemoryArea

#: Default stack size in words (16 K words, cf. the paper's 16 K default).
DEFAULT_STACK_WORDS = 4 * 1024


class VMStack:
    """A downward-growing VM stack with doubling reallocation."""

    def __init__(
        self,
        space: AddressSpace,
        arch: Architecture,
        base: int,
        n_words: int = DEFAULT_STACK_WORDS,
        label: str = "stack",
        max_words: int = 1 << 24,
        kind: AreaKind = AreaKind.STACK,
    ) -> None:
        self.space = space
        self.arch = arch
        self._wb = arch.word_bytes
        self._wshift = arch.word_bytes.bit_length() - 1
        self._base = base
        self.max_words = max_words
        self.label = label
        self._bind_area(MemoryArea(kind, base, n_words, arch, label=label))
        space.map(self.area)
        #: Stack pointer: byte address of the current top-of-stack slot.
        self.sp = self.stack_high
        #: Number of resizes performed (exposed for tests/metrics).
        self.realloc_count = 0
        #: Dirty hook for incremental checkpoints: called whenever the
        #: stack is reallocated (its area moves).  Set by the VM.
        self.on_grow = None

    def _bind_area(self, area: MemoryArea) -> None:
        """Install an area and refresh the push/pop fast-path cache.

        Stack areas are always list-backed (never staged), and every
        mutation goes through the same list object, so caching the list
        plus the [low, high) geometry lets push/pop/peek/poke index it
        directly instead of re-locating the area per access.
        """
        self.area = area
        self._words = area.words
        self._low = area.base
        self._high = area.end

    # -- geometry -----------------------------------------------------------

    @property
    def stack_low(self) -> int:
        """Lowest usable byte address (overflow boundary)."""
        return self.area.base

    @property
    def stack_high(self) -> int:
        """One-past-the-top byte address; ``sp == stack_high`` means empty."""
        return self.area.end

    @property
    def used_words(self) -> int:
        """Number of words currently on the stack."""
        return (self.stack_high - self.sp) // self._wb

    @property
    def n_words(self) -> int:
        """Current capacity in words."""
        return self.area.n_words

    # -- operations -----------------------------------------------------------

    def push(self, value: int) -> None:
        """Push one word, growing the stack if necessary."""
        sp = self.sp - self._wb
        if sp < self._low:
            self._grow()
            sp = self.sp - self._wb
        self.sp = sp
        self._words[(sp - self._low) >> self._wshift] = value

    def pop(self) -> int:
        """Pop one word."""
        sp = self.sp
        if sp >= self._high:
            raise VMRuntimeError("VM stack underflow")
        self.sp = sp + self._wb
        return self._words[(sp - self._low) >> self._wshift]

    def popn(self, n: int) -> None:
        """Discard ``n`` words."""
        if self.sp + n * self._wb > self._high:
            raise VMRuntimeError("VM stack underflow")
        self.sp += n * self._wb

    def peek(self, n: int = 0) -> int:
        """Read the word ``n`` slots below the top (0 = top of stack)."""
        addr = self.sp + n * self._wb
        if addr >= self._high:
            raise VMRuntimeError(f"stack peek {n} beyond stack bottom")
        if addr < self._low:
            return self.area.load(addr)  # SegmentationFault, as before
        return self._words[(addr - self._low) >> self._wshift]

    def poke(self, n: int, value: int) -> None:
        """Write the word ``n`` slots below the top."""
        addr = self.sp + n * self._wb
        if addr >= self._high:
            raise VMRuntimeError(f"stack poke {n} beyond stack bottom")
        if addr < self._low:
            self.area.store(addr, value)  # SegmentationFault, as before
            return
        self._words[(addr - self._low) >> self._wshift] = value

    def reserve(self, n: int) -> None:
        """Ensure ``n`` more words can be pushed without reallocation."""
        while self.sp - n * self._wb < self.stack_low:
            self._grow()

    def used_slice(self) -> list[int]:
        """The live words, from top of stack to bottom."""
        first = (self.sp - self.area.base) // self._wb
        return self.area.words[first:]

    # -- growth ------------------------------------------------------------------

    def _grow(self) -> None:
        """Reallocate at double size, preserving contents and re-basing sp.

        Mirrors the paper: "If the stack becomes full, OCVM reallocates a
        new stack with double the size of the old one."  The used region
        keeps its distance from ``stack_high``; the base address does not
        change (the area grows downward in place).
        """
        old_words = self.area.n_words
        new_words = old_words * 2
        if new_words > self.max_words:
            raise VMRuntimeError(f"{self.label} overflow (limit reached)")
        self.replace_capacity(new_words)

    def replace_capacity(self, new_words: int) -> None:
        """Install a new capacity, preserving the used region.

        Also used by restart when the checkpointed stack was larger than
        the freshly initialized one (paper §4.2 step 7).
        """
        used = self.used_slice()
        if new_words < len(used):
            raise VMRuntimeError(
                f"cannot shrink {self.label} below its live contents"
            )
        high = self.stack_high  # invariant: the high end never moves
        self.space.unmap(self.area)
        new_base = high - new_words * self._wb
        if new_base < 0:
            raise VMRuntimeError(f"{self.label} cannot grow further")
        area = MemoryArea(
            self.area.kind, new_base, new_words, self.arch, label=self.label
        )
        # The high end stays put; copy the used region under it.
        for i, w in enumerate(used):
            area.words[new_words - len(used) + i] = w
        self.space.map(area)
        self._bind_area(area)
        self.sp = self.stack_high - len(used) * self._wb
        self.realloc_count += 1
        if self.on_grow is not None:
            self.on_grow()
