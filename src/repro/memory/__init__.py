"""VM memory subsystem: tagged values, blocks, heap, stacks, atoms.

Faithful to the paper's Section 2 description of the OCaml VM: words with
the least-significant bit distinguishing immediate integers from pointers;
heap blocks with a tag/color/size header; a chunked major heap with a
freelist and page table; a bump-allocated young generation; and a growable
VM stack.
"""

from repro.memory.values import ValueCodec
from repro.memory.blocks import (
    HeaderCodec,
    Color,
    Tag,
    NO_SCAN_TAG,
    CLOSURE_TAG,
    INFIX_TAG,
    OBJECT_TAG,
    ABSTRACT_TAG,
    STRING_TAG,
    DOUBLE_TAG,
    CUSTOM_TAG,
)
from repro.memory.layout import MemoryArea, AddressSpace, AreaKind
from repro.memory.heap import Heap, HeapChunk, PAGE_SIZE
from repro.memory.minor_heap import MinorHeap
from repro.memory.stack import VMStack
from repro.memory.atoms import AtomTable
from repro.memory.cglobals import CGlobalArea
from repro.memory.strings import StringCodec
from repro.memory.floats import FloatCodec
from repro.memory.manager import MemoryManager

__all__ = [
    "ValueCodec",
    "HeaderCodec",
    "Color",
    "Tag",
    "NO_SCAN_TAG",
    "CLOSURE_TAG",
    "INFIX_TAG",
    "OBJECT_TAG",
    "ABSTRACT_TAG",
    "STRING_TAG",
    "DOUBLE_TAG",
    "CUSTOM_TAG",
    "MemoryArea",
    "AddressSpace",
    "AreaKind",
    "Heap",
    "HeapChunk",
    "PAGE_SIZE",
    "MinorHeap",
    "VMStack",
    "AtomTable",
    "CGlobalArea",
    "StringCodec",
    "FloatCodec",
    "MemoryManager",
]
