"""String block payload encoding (paper §2.2.2, "A String Type").

Strings are stored as opaque byte data inside a ``STRING``-tagged block,
using OCaml's padding scheme: the block occupies ``wosize`` whole words;
the final byte of the final word holds the number of padding bytes, so

    byte_length = wosize * word_bytes - 1 - last_byte

Bytes are laid out in *memory order*, which is why a little<->big endian
restart must repack string words rather than value-swap them: the byte
sequence, not the word value, is what must survive (§3.2.1).
"""

from __future__ import annotations

from repro.arch.architecture import Architecture


class StringCodec:
    """Pack/unpack byte strings into word sequences for one architecture."""

    def __init__(self, arch: Architecture) -> None:
        self.arch = arch
        self._wb = arch.word_bytes

    def words_needed(self, byte_length: int) -> int:
        """Block size in words for a string of ``byte_length`` bytes.

        Always leaves at least one spare byte for the padding marker.
        """
        return byte_length // self._wb + 1

    def encode(self, data: bytes) -> list[int]:
        """Pack ``data`` into words, zero-padded, with the OCaml pad byte."""
        wosize = self.words_needed(len(data))
        total = wosize * self._wb
        pad = total - 1 - len(data)
        raw = data + b"\x00" * pad + bytes([pad])
        arch = self.arch
        return [
            arch.word_from_bytes(raw[i : i + self._wb])
            for i in range(0, total, self._wb)
        ]

    def byte_length(self, words: list[int]) -> int:
        """Recover the string length from a packed word sequence."""
        if not words:
            raise ValueError("a string block has at least one word")
        last = self.arch.byte_of_word(words[-1], self._wb - 1)
        length = len(words) * self._wb - 1 - last
        if length < 0:
            raise ValueError("corrupt string padding byte")
        return length

    def decode(self, words: list[int]) -> bytes:
        """Unpack a packed word sequence back into the byte string."""
        raw = b"".join(self.arch.word_to_memory_bytes(w) for w in words)
        return raw[: self.byte_length(words)]

    def memory_bytes(self, words: list[int]) -> bytes:
        """The raw byte image of the block payload (including padding)."""
        return b"".join(self.arch.word_to_memory_bytes(w) for w in words)

    def get_byte(self, words: list[int], index: int) -> int:
        """``Byte(s, i)``: read one character of a packed string."""
        return self.arch.byte_of_word(words[index // self._wb], index % self._wb)

    def set_byte(self, words: list[int], index: int, byte: int) -> None:
        """``Byte(s, i) = b``: write one character of a packed string."""
        wi = index // self._wb
        words[wi] = self.arch.set_byte_of_word(words[wi], index % self._wb, byte)
