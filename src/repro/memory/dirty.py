"""Dirty-region tracking for incremental checkpoints.

The GC write barrier (``MemoryManager.set_field``) already observes
every mutation of the major heap; this module piggybacks a coarse
region bitmap on it, the way CheckSync exploits the runtime's barrier
for cheap runtime-integrated checkpoints.  The heap is divided into
power-of-two regions (default 1 KiB of words); any write inside a
region marks the whole region dirty.  A delta checkpoint then saves
only the dirty regions — the Nth checkpoint costs what changed, not
what exists.

Every path that writes major-heap words must mark the tracker:

* the mutator write barrier and initializing writes
  (``MemoryManager.set_field`` / ``init_field``);
* the heap allocator's header and freelist writes
  (``Heap.store_header`` / ``Heap.set_field`` / ``add_chunk``);
* minor-GC promotion, which copies payloads with raw stores
  (``MinorCollector._oldify``);
* the major sweep's direct header recoloring.

Non-heap state (stacks, globals, atoms, threads, channels) is always
saved in full by a delta — it is small — but the tracker still records
stack growth and C-global writes so a delta can omit the C-global dump
when nothing touched it, and so ``repro info`` can report why a delta
was or was not possible.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default region granularity: 1 KiB of words per dirty region.
DEFAULT_REGION_WORDS = 1024


@dataclass(frozen=True)
class DirtySnapshot:
    """An immutable copy of the tracker state at a safe point."""

    region_ids: tuple[int, ...]
    region_words: int
    word_bytes: int
    shift: int
    force_full: bool
    globals_dirty: bool
    stack_growths: int

    def chunk_runs(self, base: int, n_words: int) -> list[tuple[int, int]]:
        """Dirty ``(start_word, len_words)`` runs inside one heap chunk.

        Adjacent dirty regions coalesce into one run; the last run is
        clipped to the chunk length.  Regions never straddle chunks —
        chunk bases are region-aligned (chunk strides are multiples of
        every permitted region byte size).
        """
        shift = self.shift
        lo = base >> shift
        hi = (base + n_words * self.word_bytes - 1) >> shift
        ids = [r for r in self.region_ids if lo <= r <= hi]
        if not ids:
            return []
        runs: list[tuple[int, int]] = []
        run_start = prev = ids[0]
        for rid in ids[1:]:
            if rid == prev + 1:
                prev = rid
                continue
            runs.append((run_start, prev))
            run_start = prev = rid
        runs.append((run_start, prev))
        out = []
        for first, last in runs:
            start_word = ((first << shift) - base) // self.word_bytes
            span = (last - first + 1) * self.region_words
            span = min(span, n_words - start_word)
            if span > 0:
                out.append((start_word, span))
        return out

    def dirty_words(self, chunks: list[tuple[int, int]]) -> int:
        """Total dirty words over ``(base, n_words)`` chunk extents."""
        return sum(
            span
            for base, n_words in chunks
            for _, span in self.chunk_runs(base, n_words)
        )


class DirtyTracker:
    """Mutable dirty-region state owned by the memory manager.

    The hot-path contract: writers mark regions by adding
    ``addr >> shift`` to :attr:`regions` directly (callers cache the
    bound ``regions.add`` and ``shift``), so a barrier pays one shift
    and one set insert.  ``clear()`` empties the set in place — cached
    bound methods stay valid.
    """

    __slots__ = (
        "region_words",
        "word_bytes",
        "shift",
        "regions",
        "force_full",
        "globals_dirty",
        "stack_growths",
    )

    def __init__(
        self, word_bytes: int, region_words: int = DEFAULT_REGION_WORDS
    ) -> None:
        if region_words <= 0 or region_words & (region_words - 1):
            raise ValueError(
                f"region_words must be a positive power of two, "
                f"got {region_words}"
            )
        self.region_words = region_words
        self.word_bytes = word_bytes
        self.shift = (region_words * word_bytes).bit_length() - 1
        self.regions: set[int] = set()
        #: True when dirty information is incomplete (e.g. a failed
        #: background write lost a generation): the next checkpoint
        #: must be full.
        self.force_full = False
        self.globals_dirty = False
        self.stack_growths = 0

    # -- marking -------------------------------------------------------------

    def mark(self, addr: int) -> None:
        """Mark the region containing byte address ``addr``."""
        self.regions.add(addr >> self.shift)

    def mark_range(self, addr: int, n_words: int) -> None:
        """Mark every region overlapping ``n_words`` words at ``addr``."""
        if n_words <= 0:
            return
        first = addr >> self.shift
        last = (addr + (n_words - 1) * self.word_bytes) >> self.shift
        if first == last:
            self.regions.add(first)
        else:
            self.regions.update(range(first, last + 1))

    def mark_all(self) -> None:
        """Poison the tracker: the next checkpoint must be full."""
        self.force_full = True

    def note_globals(self) -> None:
        """A C-global slot was written or allocated."""
        self.globals_dirty = True

    def note_stack_growth(self) -> None:
        """A thread stack was reallocated (its area moved)."""
        self.stack_growths += 1

    # -- checkpoint interface ----------------------------------------------

    def snapshot(self) -> DirtySnapshot:
        """Freeze the current state (taken inside the blocking window)."""
        return DirtySnapshot(
            region_ids=tuple(sorted(self.regions)),
            region_words=self.region_words,
            word_bytes=self.word_bytes,
            shift=self.shift,
            force_full=self.force_full,
            globals_dirty=self.globals_dirty,
            stack_growths=self.stack_growths,
        )

    def clear(self) -> None:
        """Reset after a successful capture (same blocking window)."""
        self.regions.clear()
        self.force_full = False
        self.globals_dirty = False
        self.stack_growths = 0
