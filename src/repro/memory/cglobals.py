"""The "C global data" area (paper §3.1.3, "Global Data").

Models data a C extension of the application would allocate with
``malloc`` and register with the runtime: a small word-addressed area plus
a registry of *global roots* — slots in the area that hold OCaml values
and must be scanned by the GC and fixed up on restart.  The paper requires
such data to be saved during checkpoint; the registry is what makes that
possible.
"""

from __future__ import annotations

from repro.arch.architecture import Architecture
from repro.errors import MemoryError_
from repro.memory.layout import AddressSpace, AreaKind, MemoryArea

#: Default C-global area size in words.
DEFAULT_CGLOBAL_WORDS = 1024


class CGlobalArea:
    """A registered out-of-heap data area holding VM values."""

    def __init__(
        self,
        space: AddressSpace,
        arch: Architecture,
        base: int,
        n_words: int = DEFAULT_CGLOBAL_WORDS,
    ) -> None:
        self.arch = arch
        self._wb = arch.word_bytes
        self.area = MemoryArea(
            AreaKind.C_GLOBALS, base, n_words, arch, label="c-globals"
        )
        space.map(self.area)
        self._next = 0
        #: Word indices registered as GC roots (they hold values).
        self.root_indices: list[int] = []
        #: Dirty hook for incremental checkpoints: called on any slot
        #: allocation or write, so a delta can omit the C-global dump
        #: when nothing touched it.  Set by the memory manager.
        self.on_write = None

    def _note_write(self) -> None:
        if self.on_write is not None:
            self.on_write()

    def alloc_slot(self, register_root: bool = True, init: int = 1) -> int:
        """Allocate one word; returns its address.

        ``init`` defaults to ``Val_int(0)`` so a fresh root is always a
        valid value.
        """
        if self._next >= self.area.n_words:
            raise MemoryError_("C-global area exhausted")
        idx = self._next
        self._next += 1
        self._note_write()
        self.area.words[idx] = init
        if register_root:
            self.root_indices.append(idx)
        return self.area.base + idx * self._wb

    @property
    def used_words(self) -> int:
        """Number of allocated slots."""
        return self._next

    def root_addresses(self) -> list[int]:
        """Addresses of all registered root slots."""
        return [self.area.base + i * self._wb for i in self.root_indices]

    def load(self, addr: int) -> int:
        """Read a slot by address."""
        return self.area.load(addr)

    def store(self, addr: int, value: int) -> None:
        """Write a slot by address."""
        self._note_write()
        self.area.store(addr, value)
